package solver

import (
	"math/rand"
	"testing"

	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

func TestBitset(t *testing.T) {
	b := newBitset(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.has(i) {
			t.Fatalf("fresh bitset has bit %d", i)
		}
		b.set(i)
		if !b.has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	b.clear(64)
	if b.has(64) {
		t.Fatal("bit 64 still set after clear")
	}
	// nextSet must skip entire zero words and land on the next set bit.
	want := []int{0, 1, 63, 65, 127, 128, 199}
	got := []int{}
	for i := b.nextSet(0); i >= 0; i = b.nextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("nextSet walk = %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("nextSet walk = %v, want %v", got, want)
		}
	}
	if b.nextSet(200) != -1 {
		t.Fatal("nextSet past the end must return -1")
	}
}

// TestBucketQueueMatchesHeap drives a bucket queue and the binary heap
// through the same random push/pop schedule and checks every pop agrees —
// the property that makes swDense bit-identical to the map core.
func TestBucketQueueMatchesHeap(t *testing.T) {
	const n = 300
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		bq := newBucketQueue(0, n-1)
		heap := newPQ[int]()
		for step := 0; step < 2000; step++ {
			if bq.len() != heap.len() {
				t.Fatalf("trial %d: len %d vs heap %d", trial, bq.len(), heap.len())
			}
			if bq.empty() || rng.Intn(3) != 0 {
				i := rng.Intn(n)
				bq.push(i)
				heap.push(i, int64(i))
			} else {
				got, want := bq.popMin(), heap.popMin()
				if got != want {
					t.Fatalf("trial %d step %d: popMin %d, heap %d", trial, step, got, want)
				}
			}
		}
	}
}

func TestBucketQueueIndicesNonDestructive(t *testing.T) {
	q := newBucketQueue(10, 90)
	for _, i := range []int{42, 17, 88, 10} {
		q.push(i)
	}
	snap := q.indices()
	want := []int{10, 17, 42, 88}
	if len(snap) != len(want) {
		t.Fatalf("indices = %v, want %v", snap, want)
	}
	for k := range want {
		if snap[k] != want[k] {
			t.Fatalf("indices = %v, want %v", snap, want)
		}
	}
	if q.len() != 4 {
		t.Fatalf("indices drained the queue: len = %d", q.len())
	}
	for _, w := range want {
		if got := q.popMin(); got != w {
			t.Fatalf("popMin after indices = %d, want %d", got, w)
		}
	}
}

func TestUseDenseThreshold(t *testing.T) {
	auto := Config{}
	if auto.useDense(denseMinUnknowns - 1) {
		t.Error("CoreAuto compiled a tiny system")
	}
	if !auto.useDense(denseMinUnknowns) {
		t.Error("CoreAuto skipped a large system")
	}
	if (Config{Core: CoreMap}).useDense(1 << 20) {
		t.Error("CoreMap compiled")
	}
	if !(Config{Core: CoreDense}).useDense(1) {
		t.Error("CoreDense did not compile")
	}
}

// TestDenseMatchesMapCore pins the bit-identity contract package-locally:
// values and every scheduling-sensitive counter agree between the two cores
// on seeded eqgen systems, non-monotone ones included. The wider sweep
// (three domains, PSW worker matrix, checkpoint crossings) lives in
// internal/diffsolve.
func TestDenseMatchesMapCore(t *testing.T) {
	l := lattice.Ints
	for seed := uint64(1); seed <= 12; seed++ {
		g := eqgen.New(eqgen.Config{Seed: seed, Dom: eqgen.Interval, N: 60, NonMonoDensity: 0.2})
		sys := g.Interval
		init := eqn.ConstBottom[int, lattice.Interval](l)
		type entry struct {
			name string
			run  func(Config) (map[int]lattice.Interval, Stats, error)
		}
		op := Op[int](Warrow[lattice.Interval](l))
		runs := []entry{
			{"rr", func(c Config) (map[int]lattice.Interval, Stats, error) { return RR(sys, l, op, init, c) }},
			{"w", func(c Config) (map[int]lattice.Interval, Stats, error) { return W(sys, l, op, init, c) }},
			{"srr", func(c Config) (map[int]lattice.Interval, Stats, error) { return SRR(sys, l, op, init, c) }},
			{"sw", func(c Config) (map[int]lattice.Interval, Stats, error) { return SW(sys, l, op, init, c) }},
		}
		for _, e := range runs {
			mSigma, mSt, mErr := e.run(Config{Core: CoreMap, MaxEvals: 2_000_000})
			dSigma, dSt, dErr := e.run(Config{Core: CoreDense, MaxEvals: 2_000_000})
			if (mErr == nil) != (dErr == nil) {
				t.Fatalf("seed %d %s: map err %v, dense err %v", seed, e.name, mErr, dErr)
			}
			if mErr != nil {
				continue
			}
			if len(mSigma) != len(dSigma) {
				t.Fatalf("seed %d %s: dom %d vs %d", seed, e.name, len(mSigma), len(dSigma))
			}
			for x, v := range mSigma {
				if !l.Eq(v, dSigma[x]) {
					t.Fatalf("seed %d %s: σ[%d] = %s (map) vs %s (dense)", seed, e.name, x, v, dSigma[x])
				}
			}
			if mSt.Evals != dSt.Evals || mSt.Updates != dSt.Updates ||
				mSt.Rounds != dSt.Rounds || mSt.MaxQueue != dSt.MaxQueue {
				t.Fatalf("seed %d %s: stats map %+v vs dense %+v", seed, e.name, mSt, dSt)
			}
		}
	}
}

// benchSystem is a mid-size eqgen interval system for the core benchmarks.
func benchSystem() (*eqn.System[int, lattice.Interval], func(int) lattice.Interval) {
	g := eqgen.New(eqgen.Config{Seed: 99, Dom: eqgen.Interval, N: 512, FanIn: 3})
	return g.Interval, eqn.ConstBottom[int, lattice.Interval](lattice.Ints)
}

func benchCore(b *testing.B, core Core, run func(Config) (map[int]lattice.Interval, Stats, error)) {
	b.Helper()
	b.ReportAllocs()
	cfg := Config{Core: core, MaxEvals: 50_000_000}
	var evals int
	for i := 0; i < b.N; i++ {
		_, st, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		evals = st.Evals
	}
	b.ReportMetric(float64(evals), "evals/solve")
}

func BenchmarkRRMap(b *testing.B) {
	sys, init := benchSystem()
	l, op := lattice.Ints, Op[int](Warrow[lattice.Interval](lattice.Ints))
	benchCore(b, CoreMap, func(c Config) (map[int]lattice.Interval, Stats, error) { return RR(sys, l, op, init, c) })
}

func BenchmarkRRDense(b *testing.B) {
	sys, init := benchSystem()
	l, op := lattice.Ints, Op[int](Warrow[lattice.Interval](lattice.Ints))
	benchCore(b, CoreDense, func(c Config) (map[int]lattice.Interval, Stats, error) { return RR(sys, l, op, init, c) })
}

func BenchmarkSWMap(b *testing.B) {
	sys, init := benchSystem()
	l, op := lattice.Ints, Op[int](Warrow[lattice.Interval](lattice.Ints))
	benchCore(b, CoreMap, func(c Config) (map[int]lattice.Interval, Stats, error) { return SW(sys, l, op, init, c) })
}

func BenchmarkSWDense(b *testing.B) {
	sys, init := benchSystem()
	l, op := lattice.Ints, Op[int](Warrow[lattice.Interval](lattice.Ints))
	benchCore(b, CoreDense, func(c Config) (map[int]lattice.Interval, Stats, error) { return SW(sys, l, op, init, c) })
}

// The unboxed benchmarks use the structured WarrowOp: it is what unlocks
// the raw word core, and its Apply is bit-identical to Op(Warrow), so the
// boxed baselines above measure the same computation. Run with -benchmem:
// the dense rows pin the pooled-store fix (allocs/op must stay well below
// one per evaluation) and the unboxed rows pin the zero-alloc hot loop.
func BenchmarkRRUnboxed(b *testing.B) {
	sys, init := benchSystem()
	l, op := lattice.Ints, WarrowOp[int, lattice.Interval](lattice.Ints)
	benchCore(b, CoreUnboxed, func(c Config) (map[int]lattice.Interval, Stats, error) { return RR(sys, l, op, init, c) })
}

func BenchmarkSWUnboxed(b *testing.B) {
	sys, init := benchSystem()
	l, op := lattice.Ints, WarrowOp[int, lattice.Interval](lattice.Ints)
	benchCore(b, CoreUnboxed, func(c Config) (map[int]lattice.Interval, Stats, error) { return SW(sys, l, op, init, c) })
}

// BenchmarkSLRThunk exercises the local solver's hoisted eval/thunk pair;
// run with -benchmem to see the per-run (not per-evaluation) closure cost.
func BenchmarkSLRThunk(b *testing.B) {
	sys, init := benchSystem()
	l, op := lattice.Ints, Op[int](Warrow[lattice.Interval](lattice.Ints))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SLR(sys.AsPure(), l, op, init, 0, Config{MaxEvals: 50_000_000}); err != nil {
			b.Fatal(err)
		}
	}
}
