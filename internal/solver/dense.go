// Dense index-compiled cores of the global solvers RR, W, SRR and SW.
//
// Each function mirrors its map-core twin in global.go statement for
// statement — same scheduling points, same watchdog checks, same checkpoint
// captures, same Stats accounting — with the hash-map state replaced by the
// flat structures of compiled: the assignment is a slice indexed by order
// position, W's present-set is a bitset, SW's priority queue is the bucket
// queue (priorities are the indices themselves), and the influence sets are
// CSR rows. The evaluation thunk and the get callback are allocated once
// per run (denseEval) instead of once per evaluation. Results, counters and
// checkpoints are bit-identical to the map core; the differential tests in
// internal/diffsolve pin this.
package solver

import (
	"fmt"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// rrDense is RR (Fig. 1) on the compiled representation.
func rrDense[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	c := compile(sys, init)
	n := len(c.order)
	wd := newWatchdog(cfg, c.idx)
	op = instrument(wd, l, op)
	g := newEvalGuard(cfg)
	ck := newCkptSink(cfg)
	var st Stats
	st.Unknowns = n
	start, dirty := 0, false
	if cp, err := resumeCheckpoint[X, D](cfg, "rr", Fingerprint(sys)); err != nil {
		return c.sigmaMap(), st, err
	} else if cp != nil {
		c.restore(cp)
		cp.restoreStats(&st)
		start, dirty = cp.Cursor, cp.Dirty
		if start < 0 || start >= n {
			return c.sigmaMap(), st, fmt.Errorf("%w: rr cursor %d out of range", ErrBadCheckpoint, start)
		}
	}
	capture := func(k int, dirty bool) *Checkpoint[X, D] {
		cp := c.snapshot("rr", st)
		cp.Cursor, cp.Dirty = k, dirty
		return cp
	}
	e := c.evaluator()
	for {
		evaled := false
		for k := start; k < n; k++ {
			x := c.order[k]
			if err := wd.check(st.Evals); err != nil {
				err = attachCheckpoint(err, capture(k, dirty))
				if evaled {
					st.Rounds++
				}
				return c.sigmaMap(), st, err
			}
			if ck.due(st.Evals) {
				ck.emit(st.Evals, capture(k, dirty))
			}
			e.cur = k
			rhsVal, attempts, ee := guardedEval(g, x, e.thunk)
			st.Retries += attempts - 1
			if ee != nil {
				err := attachCheckpoint(wd.failEval(ee, st.Evals), capture(k, dirty))
				if evaled {
					st.Rounds++
				}
				return c.sigmaMap(), st, err
			}
			st.Evals++
			evaled = true
			next := op.Apply(x, c.vals[k], rhsVal)
			if !l.Eq(c.vals[k], next) {
				c.vals[k] = next
				st.Updates++
				dirty = true
			}
		}
		start = 0
		st.Rounds++
		if !dirty {
			return c.sigmaMap(), st, nil
		}
		dirty = false
	}
}

// wDense is W (Fig. 2) on the compiled representation: the LIFO stack holds
// order positions and the membership set is a bitset.
func wDense[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	c := compile(sys, init)
	n := len(c.order)
	wd := newWatchdog(cfg, c.idx)
	op = instrument(wd, l, op)
	g := newEvalGuard(cfg)
	ck := newCkptSink(cfg)
	var st Stats
	st.Unknowns = n

	stack := make([]int32, 0, n)
	present := newBitset(n)
	push := func(i int32) {
		if !present.has(int(i)) {
			present.set(int(i))
			stack = append(stack, i)
		}
	}
	if cp, err := resumeCheckpoint[X, D](cfg, "w", Fingerprint(sys)); err != nil {
		return c.sigmaMap(), st, err
	} else if cp != nil {
		c.restore(cp)
		cp.restoreStats(&st)
		// cp.Queue holds the stack bottom-to-top; pushing in order restores
		// the exact LIFO state.
		queued, qerr := c.queueIndices(cp.Queue)
		if qerr != nil {
			return c.sigmaMap(), st, qerr
		}
		for _, i := range queued {
			push(int32(i))
		}
	} else {
		// Push in reverse so that x₁ is on top initially, matching the
		// paper's trace W = [x₁, x₂] where x₁ is extracted first.
		for i := n - 1; i >= 0; i-- {
			push(int32(i))
		}
		st.MaxQueue = len(stack)
	}
	capture := func() *Checkpoint[X, D] {
		cp := c.snapshot("w", st)
		idxs := make([]int, len(stack))
		for k, i := range stack {
			idxs[k] = int(i)
		}
		cp.Queue = c.queueUnknowns(idxs)
		return cp
	}
	e := c.evaluator()
	for len(stack) > 0 {
		if err := wd.check(st.Evals); err != nil {
			return c.sigmaMap(), st, attachCheckpoint(err, capture())
		}
		if ck.due(st.Evals) {
			ck.emit(st.Evals, capture())
		}
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		present.clear(int(i))
		x := c.order[i]
		e.cur = int(i)
		rhsVal, attempts, ee := guardedEval(g, x, e.thunk)
		st.Retries += attempts - 1
		if ee != nil {
			// The failed evaluation never happened: keep x scheduled so the
			// checkpoint resumes by re-evaluating it.
			push(i)
			return c.sigmaMap(), st, attachCheckpoint(wd.failEval(ee, st.Evals), capture())
		}
		st.Evals++
		next := op.Apply(x, c.vals[i], rhsVal)
		if !l.Eq(c.vals[i], next) {
			c.vals[i] = next
			st.Updates++
			readers := c.infl(int(i))
			for k := len(readers) - 1; k >= 0; k-- {
				push(readers[k])
			}
			if len(stack) > st.MaxQueue {
				st.MaxQueue = len(stack)
			}
		}
	}
	return c.sigmaMap(), st, nil
}

// srrDense is SRR (Fig. 3) on the compiled representation.
func srrDense[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	c := compile(sys, init)
	n := len(c.order)
	wd := newWatchdog(cfg, c.idx)
	op = instrument(wd, l, op)
	g := newEvalGuard(cfg)
	ck := newCkptSink(cfg)
	var st Stats
	st.Unknowns = n
	resumeLevel := 0
	if cp, err := resumeCheckpoint[X, D](cfg, "srr", Fingerprint(sys)); err != nil {
		return c.sigmaMap(), st, err
	} else if cp != nil {
		c.restore(cp)
		cp.restoreStats(&st)
		resumeLevel = cp.Cursor
		if resumeLevel < 1 || resumeLevel > n {
			return c.sigmaMap(), st, fmt.Errorf("%w: srr cursor %d out of range", ErrBadCheckpoint, resumeLevel)
		}
	}
	capture := func(i int) *Checkpoint[X, D] {
		cp := c.snapshot("srr", st)
		cp.Cursor = i
		return cp
	}
	e := c.evaluator()
	var solve func(i int, resumed bool) error
	solve = func(i int, resumed bool) error {
		if i == 0 {
			return nil
		}
		first := resumed
		for {
			// See the map core for the resume re-entry protocol.
			if !(first && i == resumeLevel) {
				if err := solve(i-1, first && i > resumeLevel); err != nil {
					return err
				}
			}
			first = false
			x := c.order[i-1]
			if err := wd.check(st.Evals); err != nil {
				return attachCheckpoint(err, capture(i))
			}
			if ck.due(st.Evals) {
				ck.emit(st.Evals, capture(i))
			}
			e.cur = i - 1
			rhsVal, attempts, ee := guardedEval(g, x, e.thunk)
			st.Retries += attempts - 1
			if ee != nil {
				return attachCheckpoint(wd.failEval(ee, st.Evals), capture(i))
			}
			st.Evals++
			next := op.Apply(x, c.vals[i-1], rhsVal)
			if l.Eq(c.vals[i-1], next) {
				return nil
			}
			c.vals[i-1] = next
			st.Updates++
		}
	}
	err := solve(n, resumeLevel > 0)
	return c.sigmaMap(), st, err
}

// swDense is SW (Fig. 4) on the compiled representation: the index-ordered
// binary heap collapses into the monotone bucket queue, because an
// unknown's priority is exactly its order position.
func swDense[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	c := compile(sys, init)
	n := len(c.order)
	wd := newWatchdog(cfg, c.idx)
	op = instrument(wd, l, op)
	g := newEvalGuard(cfg)
	ck := newCkptSink(cfg)
	var st Stats
	st.Unknowns = n

	q := newBucketQueue(0, n-1)
	if cp, err := resumeCheckpoint[X, D](cfg, "sw", Fingerprint(sys)); err != nil {
		return c.sigmaMap(), st, err
	} else if cp != nil {
		c.restore(cp)
		cp.restoreStats(&st)
		queued, qerr := c.queueIndices(cp.Queue)
		if qerr != nil {
			return c.sigmaMap(), st, qerr
		}
		for _, i := range queued {
			q.push(i)
		}
	} else {
		for i := 0; i < n; i++ {
			q.push(i)
		}
		st.MaxQueue = q.len()
	}
	capture := func() *Checkpoint[X, D] {
		cp := c.snapshot("sw", st)
		// indices() is ascending, matching the map core's sort by index.
		cp.Queue = c.queueUnknowns(q.indices())
		return cp
	}
	e := c.evaluator()
	for !q.empty() {
		if err := wd.check(st.Evals); err != nil {
			return c.sigmaMap(), st, attachCheckpoint(err, capture())
		}
		if ck.due(st.Evals) {
			ck.emit(st.Evals, capture())
		}
		i := q.popMin()
		x := c.order[i]
		e.cur = i
		rhsVal, attempts, ee := guardedEval(g, x, e.thunk)
		st.Retries += attempts - 1
		if ee != nil {
			// The failed evaluation never happened: keep x scheduled so the
			// checkpoint resumes by re-evaluating it.
			q.push(i)
			return c.sigmaMap(), st, attachCheckpoint(wd.failEval(ee, st.Evals), capture())
		}
		st.Evals++
		next := op.Apply(x, c.vals[i], rhsVal)
		if !l.Eq(c.vals[i], next) {
			c.vals[i] = next
			st.Updates++
			q.push(i)
			for _, j := range c.infl(i) {
				q.push(int(j))
			}
			if q.len() > st.MaxQueue {
				st.MaxQueue = q.len()
			}
		}
	}
	return c.sigmaMap(), st, nil
}
