// Dense index-compiled cores of the global solvers RR, W, SRR and SW.
//
// Each function mirrors its map-core twin in global.go statement for
// statement — same scheduling points, same watchdog checks, same checkpoint
// captures, same Stats accounting — with the hash-map state replaced by the
// flat structures of compiled: the assignment is a slice indexed by order
// position (or, on the unboxed core, a flat word store — see valuerep.go),
// W's present-set is a bitset, SW's priority queue is the bucket queue
// (priorities are the indices themselves), and the influence sets are CSR
// rows. The per-evaluation work — guard, evaluate, observe, apply, store —
// lives in the execCore step function, built once per run instead of once
// per evaluation. Results, counters and checkpoints are bit-identical to
// the map core; the differential tests in internal/diffsolve pin this.
package solver

import (
	"fmt"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// rrDense is RR (Fig. 1) on the compiled representation.
func rrDense[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	vc, wd := buildCore(sys, l, op, init, cfg)
	defer vc.release()
	sh := vc.shape()
	n := len(sh.order)
	ck := newCkptSink(cfg)
	var st Stats
	st.Unknowns = n
	start, dirty := 0, false
	if cp, err := resumeCheckpoint[X, D](cfg, "rr", Fingerprint(sys)); err != nil {
		return vc.sigmaMap(), st, err
	} else if cp != nil {
		vc.restore(cp)
		cp.restoreStats(&st)
		start, dirty = cp.Cursor, cp.Dirty
		if start < 0 || start >= n {
			return vc.sigmaMap(), st, fmt.Errorf("%w: rr cursor %d out of range", ErrBadCheckpoint, start)
		}
	}
	capture := func(k int, dirty bool) *Checkpoint[X, D] {
		cp := vc.snapshot("rr", st)
		cp.Cursor, cp.Dirty = k, dirty
		return cp
	}
	step := vc.stepper()
	for {
		evaled := false
		for k := start; k < n; k++ {
			if err := wd.check(st.Evals); err != nil {
				err = attachCheckpoint(err, capture(k, dirty))
				if evaled {
					st.Rounds++
				}
				return vc.sigmaMap(), st, err
			}
			if ck.due(st.Evals) {
				ck.emit(st.Evals, capture(k, dirty))
			}
			changed, attempts, ee := step(k)
			st.Retries += attempts - 1
			if ee != nil {
				err := attachCheckpoint(wd.failEval(ee, st.Evals), capture(k, dirty))
				if evaled {
					st.Rounds++
				}
				return vc.sigmaMap(), st, err
			}
			st.Evals++
			evaled = true
			if changed {
				st.Updates++
				dirty = true
			}
		}
		start = 0
		st.Rounds++
		if !dirty {
			return vc.sigmaMap(), st, nil
		}
		dirty = false
	}
}

// wDense is W (Fig. 2) on the compiled representation: the LIFO stack holds
// order positions and the membership set is a bitset.
func wDense[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	vc, wd := buildCore(sys, l, op, init, cfg)
	defer vc.release()
	sh := vc.shape()
	n := len(sh.order)
	ck := newCkptSink(cfg)
	var st Stats
	st.Unknowns = n

	stack := make([]int32, 0, n)
	present := newBitset(n)
	push := func(i int32) {
		if !present.has(int(i)) {
			present.set(int(i))
			stack = append(stack, i)
		}
	}
	if cp, err := resumeCheckpoint[X, D](cfg, "w", Fingerprint(sys)); err != nil {
		return vc.sigmaMap(), st, err
	} else if cp != nil {
		vc.restore(cp)
		cp.restoreStats(&st)
		// cp.Queue holds the stack bottom-to-top; pushing in order restores
		// the exact LIFO state.
		queued, qerr := sh.queueIndices(cp.Queue)
		if qerr != nil {
			return vc.sigmaMap(), st, qerr
		}
		for _, i := range queued {
			push(int32(i))
		}
	} else {
		// Push in reverse so that x₁ is on top initially, matching the
		// paper's trace W = [x₁, x₂] where x₁ is extracted first.
		for i := n - 1; i >= 0; i-- {
			push(int32(i))
		}
		st.MaxQueue = len(stack)
	}
	capture := func() *Checkpoint[X, D] {
		cp := vc.snapshot("w", st)
		idxs := make([]int, len(stack))
		for k, i := range stack {
			idxs[k] = int(i)
		}
		cp.Queue = sh.queueUnknowns(idxs)
		return cp
	}
	step := vc.stepper()
	for len(stack) > 0 {
		if err := wd.check(st.Evals); err != nil {
			return vc.sigmaMap(), st, attachCheckpoint(err, capture())
		}
		if ck.due(st.Evals) {
			ck.emit(st.Evals, capture())
		}
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		present.clear(int(i))
		changed, attempts, ee := step(int(i))
		st.Retries += attempts - 1
		if ee != nil {
			// The failed evaluation never happened: keep x scheduled so the
			// checkpoint resumes by re-evaluating it.
			push(i)
			return vc.sigmaMap(), st, attachCheckpoint(wd.failEval(ee, st.Evals), capture())
		}
		st.Evals++
		if changed {
			st.Updates++
			readers := sh.infl(int(i))
			for k := len(readers) - 1; k >= 0; k-- {
				push(readers[k])
			}
			if len(stack) > st.MaxQueue {
				st.MaxQueue = len(stack)
			}
		}
	}
	return vc.sigmaMap(), st, nil
}

// srrDense is SRR (Fig. 3) on the compiled representation.
func srrDense[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	vc, wd := buildCore(sys, l, op, init, cfg)
	defer vc.release()
	sh := vc.shape()
	n := len(sh.order)
	ck := newCkptSink(cfg)
	var st Stats
	st.Unknowns = n
	resumeLevel := 0
	if cp, err := resumeCheckpoint[X, D](cfg, "srr", Fingerprint(sys)); err != nil {
		return vc.sigmaMap(), st, err
	} else if cp != nil {
		vc.restore(cp)
		cp.restoreStats(&st)
		resumeLevel = cp.Cursor
		if resumeLevel < 1 || resumeLevel > n {
			return vc.sigmaMap(), st, fmt.Errorf("%w: srr cursor %d out of range", ErrBadCheckpoint, resumeLevel)
		}
	}
	capture := func(i int) *Checkpoint[X, D] {
		cp := vc.snapshot("srr", st)
		cp.Cursor = i
		return cp
	}
	step := vc.stepper()
	var solve func(i int, resumed bool) error
	solve = func(i int, resumed bool) error {
		if i == 0 {
			return nil
		}
		first := resumed
		for {
			// See the map core for the resume re-entry protocol.
			if !(first && i == resumeLevel) {
				if err := solve(i-1, first && i > resumeLevel); err != nil {
					return err
				}
			}
			first = false
			if err := wd.check(st.Evals); err != nil {
				return attachCheckpoint(err, capture(i))
			}
			if ck.due(st.Evals) {
				ck.emit(st.Evals, capture(i))
			}
			changed, attempts, ee := step(i - 1)
			st.Retries += attempts - 1
			if ee != nil {
				return attachCheckpoint(wd.failEval(ee, st.Evals), capture(i))
			}
			st.Evals++
			if !changed {
				return nil
			}
			st.Updates++
		}
	}
	err := solve(n, resumeLevel > 0)
	return vc.sigmaMap(), st, err
}

// swDense is SW (Fig. 4) on the compiled representation: the index-ordered
// binary heap collapses into the monotone bucket queue, because an
// unknown's priority is exactly its order position.
func swDense[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	vc, wd := buildCore(sys, l, op, init, cfg)
	defer vc.release()
	sh := vc.shape()
	n := len(sh.order)
	ck := newCkptSink(cfg)
	var st Stats
	st.Unknowns = n

	q := newBucketQueue(0, n-1)
	if cp, err := resumeCheckpoint[X, D](cfg, "sw", Fingerprint(sys)); err != nil {
		return vc.sigmaMap(), st, err
	} else if cp != nil {
		vc.restore(cp)
		cp.restoreStats(&st)
		queued, qerr := sh.queueIndices(cp.Queue)
		if qerr != nil {
			return vc.sigmaMap(), st, qerr
		}
		for _, i := range queued {
			q.push(i)
		}
	} else {
		for i := 0; i < n; i++ {
			q.push(i)
		}
		st.MaxQueue = q.len()
	}
	capture := func() *Checkpoint[X, D] {
		cp := vc.snapshot("sw", st)
		// indices() is ascending, matching the map core's sort by index.
		cp.Queue = sh.queueUnknowns(q.indices())
		return cp
	}
	step := vc.stepper()
	for !q.empty() {
		if err := wd.check(st.Evals); err != nil {
			return vc.sigmaMap(), st, attachCheckpoint(err, capture())
		}
		if ck.due(st.Evals) {
			ck.emit(st.Evals, capture())
		}
		i := q.popMin()
		changed, attempts, ee := step(i)
		st.Retries += attempts - 1
		if ee != nil {
			// The failed evaluation never happened: keep x scheduled so the
			// checkpoint resumes by re-evaluating it.
			q.push(i)
			return vc.sigmaMap(), st, attachCheckpoint(wd.failEval(ee, st.Evals), capture())
		}
		st.Evals++
		if changed {
			st.Updates++
			q.push(i)
			for _, j := range sh.infl(i) {
				q.push(int(j))
			}
			if q.len() > st.MaxQueue {
				st.MaxQueue = q.len()
			}
		}
	}
	return vc.sigmaMap(), st, nil
}
