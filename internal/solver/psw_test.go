package solver

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/eqdsl"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/wcet"
)

// TestTarjanSCC: components and their reverse-topological numbering on a
// small graph with two cycles and a bridge:
//
//	0 ↔ 1 → 2 → 3 ↔ 4,  5 isolated
func TestTarjanSCC(t *testing.T) {
	adj := [][]int{{1}, {0, 2}, {3}, {4}, {3}, {}}
	comp, ncomp := tarjanSCC(adj)
	if ncomp != 4 {
		t.Fatalf("ncomp = %d, want 4", ncomp)
	}
	if comp[0] != comp[1] || comp[3] != comp[4] {
		t.Errorf("cycles split: comp = %v", comp)
	}
	if comp[0] == comp[2] || comp[2] == comp[3] || comp[0] == comp[3] {
		t.Errorf("distinct components merged: comp = %v", comp)
	}
	// Reverse topological: every dependence has a smaller component id.
	for i, deps := range adj {
		for _, j := range deps {
			if comp[i] != comp[j] && comp[j] > comp[i] {
				t.Errorf("edge %d→%d: comp %d→%d not reverse-topological", i, j, comp[i], comp[j])
			}
		}
	}
	depth := sccDepths(adj, comp, ncomp)
	if d := depth[comp[3]]; d != 1 {
		t.Errorf("depth of {3,4} = %d, want 1 (reads nothing)", d)
	}
	if d := depth[comp[0]]; d != 3 {
		t.Errorf("depth of {0,1} = %d, want 3 (reads {2} which reads {3,4})", d)
	}
	if d := depth[comp[5]]; d != 1 {
		t.Errorf("depth of {5} = %d, want 1", d)
	}
}

// TestStratify: backward deps keep strata minimal; forward deps and cycles
// coarsen them until every external read points strictly backwards.
func TestStratify(t *testing.T) {
	cases := []struct {
		adj  [][]int
		want []stratum
	}{
		// Chain of backward reads: every unknown its own stratum.
		{[][]int{{}, {0}, {1}}, []stratum{{0, 0}, {1, 1}, {2, 2}}},
		// A cycle 1↔2 spans one stratum.
		{[][]int{{}, {2}, {1}}, []stratum{{0, 0}, {1, 2}}},
		// Forward cross-SCC read 0→2 merges everything in between.
		{[][]int{{2}, {}, {}}, []stratum{{0, 2}}},
		// Cycle over non-adjacent indices {0,2} swallows index 1.
		{[][]int{{2}, {}, {0}}, []stratum{{0, 2}}},
	}
	for i, c := range cases {
		got := stratify(c.adj)
		if len(got) != len(c.want) {
			t.Errorf("case %d: strata %v, want %v", i, got, c.want)
			continue
		}
		for k := range got {
			if got[k] != c.want[k] {
				t.Errorf("case %d: strata %v, want %v", i, got, c.want)
				break
			}
		}
	}
	// Strata never split an SCC and all external reads point backwards.
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(20)
		adj := make([][]int, n)
		for i := range adj {
			for k := 0; k < r.Intn(4); k++ {
				adj[i] = append(adj[i], r.Intn(n))
			}
		}
		strata := stratify(adj)
		strat := make([]int, n)
		for si, s := range strata {
			for i := s.lo; i <= s.hi; i++ {
				strat[i] = si
			}
		}
		for i, deps := range adj {
			for _, j := range deps {
				if strat[j] > strat[i] {
					t.Fatalf("trial %d: forward cross-stratum read %d→%d in %v", trial, i, j, strata)
				}
			}
		}
		comp, _ := tarjanSCC(adj)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if comp[i] == comp[j] && strat[i] != strat[j] {
					t.Fatalf("trial %d: SCC of %d,%d split across strata %v", trial, i, j, strata)
				}
			}
		}
	}
}

// assertPSWMatchesSW runs SW and PSW (at several worker counts) on the same
// system and asserts per-unknown lattice equality, identical errors, and
// identical evaluation counts — the sequential-equivalence contract of PSW.
func assertPSWMatchesSW[X comparable, D any](t *testing.T, name string, sys *eqn.System[X, D], l lattice.Lattice[D], mkOp func() Operator[X, D], init func(X) D, cfg Config) {
	t.Helper()
	want, wantSt, wantErr := SW(sys, l, mkOp(), init, cfg)
	for _, workers := range []int{1, 2, 4, 8} {
		pcfg := cfg
		pcfg.Workers = workers
		got, st, err := PSW(sys, l, mkOp(), init, pcfg)
		if !errors.Is(err, wantErr) && !(err == nil && wantErr == nil) {
			t.Fatalf("%s/workers=%d: err = %v, SW err = %v", name, workers, err, wantErr)
		}
		if err != nil {
			continue // partial states are schedule-dependent
		}
		for _, x := range sys.Order() {
			if !l.Eq(got[x], want[x]) {
				t.Fatalf("%s/workers=%d: σ[%v] = %s, SW has %s",
					name, workers, x, l.Format(got[x]), l.Format(want[x]))
			}
		}
		if st.Evals != wantSt.Evals {
			t.Errorf("%s/workers=%d: Evals = %d, SW did %d", name, workers, st.Evals, wantSt.Evals)
		}
		if st.Updates != wantSt.Updates {
			t.Errorf("%s/workers=%d: Updates = %d, SW did %d", name, workers, st.Updates, wantSt.Updates)
		}
	}
}

// TestPSWMatchesSWOnTestSystems: bit-identity on every finite system the
// solver tests use — the counting loop, the paper's Examples 1–2, an
// acyclic system under replace, and a large batch of random monotone
// systems (whose definition orders are generally *not* topologically
// consistent, exercising the stratum-coarsening path).
func TestPSWMatchesSWOnTestSystems(t *testing.T) {
	ints := lattice.Ints
	nat := lattice.NatInf
	cfg := Config{MaxEvals: 100000}

	assertPSWMatchesSW(t, "loop", loopSystem(), ints,
		func() Operator[string, iv] { return Op[string](Warrow[iv](ints)) }, ivInit, cfg)
	assertPSWMatchesSW(t, "example1", example1System(), nat,
		func() Operator[string, lattice.Nat] { return natWarrow() }, zeroInit, cfg)
	assertPSWMatchesSW(t, "example2", example2System(), nat,
		func() Operator[string, lattice.Nat] { return natWarrow() }, zeroInit, cfg)
	assertPSWMatchesSW(t, "oscillator(budget)", nonMonotoneOscillator(), ints,
		func() Operator[string, iv] { return Op[string](Warrow[iv](ints)) }, ivInit, Config{MaxEvals: 2000})

	acyclic := eqn.NewSystem[string, iv]()
	acyclic.Define("a", nil, func(func(string) iv) iv { return lattice.Range(1, 2) })
	acyclic.Define("b", []string{"a"}, func(get func(string) iv) iv {
		return get("a").Add(lattice.Singleton(10))
	})
	acyclic.Define("c", []string{"a", "b"}, func(get func(string) iv) iv {
		return ints.Join(get("a"), get("b"))
	})
	assertPSWMatchesSW(t, "acyclic/replace", acyclic, ints,
		func() Operator[string, iv] { return Op[string](Replace[iv]()) },
		ivInit, Config{})

	r := rand.New(rand.NewSource(271))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(12)
		sys := randMonotoneSystem(r, n)
		assertPSWMatchesSW(t, fmt.Sprintf("rand%d", trial), sys, ints,
			func() Operator[int, iv] { return Op[int](Warrow[iv](ints)) },
			func(int) iv { return lattice.EmptyInterval }, Config{MaxEvals: 2_000_000})
	}
}

// TestPSWEmptySystem: zero unknowns is not a deadlock.
func TestPSWEmptySystem(t *testing.T) {
	sys := eqn.NewSystem[string, iv]()
	sigma, st, err := PSW(sys, lattice.Ints, Op[string](Warrow[iv](lattice.Ints)), ivInit, Config{Workers: 4})
	if err != nil || len(sigma) != 0 {
		t.Fatalf("σ = %v, err = %v", sigma, err)
	}
	if st.Strata != 0 {
		t.Errorf("Strata = %d, want 0", st.Strata)
	}
}

// TestPSWMatchesSWOnEqExamples: bit-identity on the textual example systems
// shipped in examples/systems.
func TestPSWMatchesSWOnEqExamples(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "systems")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".eq" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		f, err := eqdsl.Parse(string(data))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if f.Open {
			continue // edit overlay, not a closed system
		}
		cfg := Config{MaxEvals: 100000}
		switch f.Domain {
		case eqdsl.DomainNatInf:
			sys, err := f.NatSystem()
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
			assertPSWMatchesSW(t, e.Name(), sys, lattice.NatInf,
				func() Operator[string, lattice.Nat] {
					return Op[string](Warrow[lattice.Nat](lattice.NatInf))
				},
				func(string) lattice.Nat { return lattice.NatOf(0) }, cfg)
		case eqdsl.DomainInterval:
			sys, err := f.IntervalSystem()
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
			assertPSWMatchesSW(t, e.Name(), sys, lattice.Ints,
				func() Operator[string, iv] { return Op[string](Warrow[iv](lattice.Ints)) },
				func(string) iv { return lattice.EmptyInterval }, cfg)
		}
		ran++
	}
	if ran < 3 {
		t.Fatalf("only %d .eq examples found in %s", ran, dir)
	}
}

// cfgCountSystem derives a finite constraint system from a control-flow
// graph: the unknown of a node is an interval abstraction of "steps taken
// to reach it", joining pred+1 over all in-edges — a monotone system whose
// dependence structure (loops, branches, chains) is exactly the WCET
// benchmark's, ordered by the linearized WTO as the paper prescribes.
func cfgCountSystem(g *cfg.Graph) *eqn.System[*cfg.Node, iv] {
	l := lattice.Ints
	order := cfg.LinearizeWTO(g.WTO())
	inOrder := make(map[*cfg.Node]bool, len(order))
	for _, n := range order {
		inOrder[n] = true
	}
	sys := eqn.NewSystem[*cfg.Node, iv]()
	for _, n := range order {
		n := n
		var deps []*cfg.Node
		for _, e := range n.In {
			if inOrder[e.From] {
				deps = append(deps, e.From)
			}
		}
		preds := deps
		entry := n == g.Entry
		sys.Define(n, deps, func(get func(*cfg.Node) iv) iv {
			v := lattice.EmptyInterval
			if entry {
				v = lattice.Singleton(0)
			}
			for _, p := range preds {
				v = l.Join(v, get(p).Add(lattice.Singleton(1)))
			}
			return v
		})
	}
	return sys
}

// TestPSWMatchesSWOnWCETSystems: bit-identity on constraint systems derived
// from every function CFG of the WCET suite — realistic loop-nest SCC
// structure under WTO orders, where each stratum is exactly one SCC.
func TestPSWMatchesSWOnWCETSystems(t *testing.T) {
	l := lattice.Ints
	for _, b := range wcet.All() {
		ast, err := cint.Parse(b.Src)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		prog := cfg.Build(ast)
		for _, fn := range prog.Order {
			g := prog.Graphs[fn]
			sys := cfgCountSystem(g)
			if sys.Len() == 0 {
				continue
			}
			assertPSWMatchesSW(t, b.Name+"/"+fn, sys, l,
				func() Operator[*cfg.Node, iv] { return Op[*cfg.Node](Warrow[iv](l)) },
				func(*cfg.Node) iv { return lattice.EmptyInterval },
				Config{MaxEvals: 5_000_000})
		}
	}
}

// TestPSWDeterminism: 20 repetitions with randomized worker counts produce
// identical solutions and identical post-solution verdicts vs SW — the
// race-detector-friendly determinism contract.
func TestPSWDeterminism(t *testing.T) {
	l := lattice.Ints
	r := rand.New(rand.NewSource(1234))
	init := func(int) iv { return lattice.EmptyInterval }
	sys := randMonotoneSystem(r, 30)
	cfg := Config{MaxEvals: 2_000_000}
	want, _, err := SW(sys, l, Op[int](Warrow[iv](l)), init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, wantPost := eqn.IsPostSolution(l, sys, want, init)
	for rep := 0; rep < 20; rep++ {
		pcfg := cfg
		pcfg.Workers = 1 + r.Intn(8)
		got, _, err := PSW(sys, l, Op[int](Warrow[iv](l)), init, pcfg)
		if err != nil {
			t.Fatalf("rep %d (workers=%d): %v", rep, pcfg.Workers, err)
		}
		for _, x := range sys.Order() {
			if !l.Eq(got[x], want[x]) {
				t.Fatalf("rep %d (workers=%d): σ[%v] = %s, want %s",
					rep, pcfg.Workers, x, got[x], want[x])
			}
		}
		if _, post := eqn.IsPostSolution(l, sys, got, init); post != wantPost {
			t.Fatalf("rep %d: IsPostSolution = %v, SW verdict %v", rep, post, wantPost)
		}
	}
}

// oscillatorFarm builds k independent copies of the non-monotone
// oscillator on which plain ⊟ never stabilizes — k divergent strata that
// PSW runs concurrently.
func oscillatorFarm(k int) *eqn.System[string, iv] {
	s := eqn.NewSystem[string, iv]()
	for c := 0; c < k; c++ {
		x := fmt.Sprintf("x%d", c)
		s.Define(x, []string{x}, func(get func(string) iv) iv {
			v := get(x)
			if v.IsEmpty() {
				return lattice.Singleton(0)
			}
			if v.Hi.IsPosInf() {
				return lattice.Range(0, 5)
			}
			return lattice.NewInterval(lattice.Fin(0), v.Hi.Add(lattice.Fin(1)))
		})
	}
	return s
}

// TestPSWBudgetSurfacesFromWorkers: when workers hit the shared evaluation
// budget mid-flight, PSW reports ErrEvalBudget instead of deadlocking, for
// any pool size, and clamps the reported eval count to the budget.
func TestPSWBudgetSurfacesFromWorkers(t *testing.T) {
	l := lattice.Ints
	sys := oscillatorFarm(6)
	for _, workers := range []int{1, 2, 4, 8} {
		_, st, err := PSW(sys, l, Op[string](Warrow[iv](l)), ivInit,
			Config{MaxEvals: 5000, Workers: workers})
		if !errors.Is(err, ErrEvalBudget) {
			t.Fatalf("workers=%d: err = %v, want ErrEvalBudget", workers, err)
		}
		if st.Evals != 5000 {
			t.Errorf("workers=%d: Evals = %d, want clamped to 5000", workers, st.Evals)
		}
	}
}

// TestPSWStatsTopology: the stats expose the decomposition — SCC and
// stratum counts, size/depth histograms, worker count, wall time.
func TestPSWStatsTopology(t *testing.T) {
	l := lattice.Ints
	// Three independent copies of the counting loop: 3 SCCs of size 2
	// ({h,b}) plus 3 singleton exits, in 6 strata.
	sys := eqn.NewSystem[string, iv]()
	for c := 0; c < 3; c++ {
		h, b, e := fmt.Sprintf("h%d", c), fmt.Sprintf("b%d", c), fmt.Sprintf("e%d", c)
		sys.Define(h, []string{b}, func(get func(string) iv) iv {
			return l.Join(lattice.Singleton(0), get(b).Add(lattice.Singleton(1)))
		})
		sys.Define(b, []string{h}, func(get func(string) iv) iv {
			return get(h).RestrictLt(lattice.Singleton(100))
		})
		sys.Define(e, []string{h}, func(get func(string) iv) iv {
			return get(h).RestrictGe(lattice.Singleton(100))
		})
	}
	_, st, err := PSW(sys, l, Op[string](Warrow[iv](l)), ivInit, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.SCCs != 6 {
		t.Errorf("SCCs = %d, want 6", st.SCCs)
	}
	if st.Strata != 6 {
		t.Errorf("Strata = %d, want 6", st.Strata)
	}
	if st.Workers != 4 {
		t.Errorf("Workers = %d, want 4", st.Workers)
	}
	if st.WallNs <= 0 {
		t.Errorf("WallNs = %d, want > 0", st.WallNs)
	}
	if st.SCCSize[1] != 3 { // three SCCs of size 2 land in bucket 1
		t.Errorf("SCCSize = %v, want 3 components in bucket 1", st.SCCSize)
	}
	if st.SCCSize[0] != 3 { // three singleton exits
		t.Errorf("SCCSize = %v, want 3 components in bucket 0", st.SCCSize)
	}
	if st.SCCDepth[0] != 3 || st.SCCDepth[1] != 3 {
		// Loops at depth 1 (bucket 0), exits at depth 2 (bucket 1).
		t.Errorf("SCCDepth = %v, want 3 at depth 1 and 3 at depth 2", st.SCCDepth)
	}
	if st.MaxQueue <= 0 {
		t.Errorf("MaxQueue = %d, want > 0", st.MaxQueue)
	}
}

// TestAddStatsMaxQueue: addStats carries the queue high-water mark via max,
// not sum — two phases over the same system share one queue capacity.
func TestAddStatsMaxQueue(t *testing.T) {
	got := addStats(Stats{Evals: 2, MaxQueue: 7, Unknowns: 5}, Stats{Evals: 3, MaxQueue: 4, Unknowns: 5})
	if got.MaxQueue != 7 {
		t.Errorf("MaxQueue = %d, want 7", got.MaxQueue)
	}
	if got.Evals != 5 {
		t.Errorf("Evals = %d, want 5", got.Evals)
	}
	if got.Unknowns != 5 {
		t.Errorf("Unknowns = %d, want 5", got.Unknowns)
	}
}
