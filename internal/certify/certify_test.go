package certify

import (
	"strings"
	"testing"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// loopSystem is the bounded-loop system of examples/systems/loop.eq:
//
//	h = join([0,0], b + [1,1])
//	b = meet(h, [-inf,99])
//	e = meet(h, [100,inf])
func loopSystem() *eqn.System[string, lattice.Interval] {
	l := lattice.Ints
	s := eqn.NewSystem[string, lattice.Interval]()
	s.Define("h", []string{"b"}, func(get func(string) lattice.Interval) lattice.Interval {
		return l.Join(lattice.Singleton(0), get("b").Add(lattice.Singleton(1)))
	})
	s.Define("b", []string{"h"}, func(get func(string) lattice.Interval) lattice.Interval {
		return l.Meet(get("h"), lattice.NewInterval(lattice.NegInf, lattice.Fin(99)))
	})
	s.Define("e", []string{"h"}, func(get func(string) lattice.Interval) lattice.Interval {
		return l.Meet(get("h"), lattice.NewInterval(lattice.Fin(100), lattice.PosInf))
	})
	return s
}

func botIv(string) lattice.Interval { return lattice.EmptyInterval }

// TestSystemAcceptsSolverOutput: the SW+⊟ solution of the loop system
// certifies, and the report counts every right-hand side.
func TestSystemAcceptsSolverOutput(t *testing.T) {
	l := lattice.Ints
	sys := loopSystem()
	sigma, _, err := solver.SW(sys, l, solver.Op[string](solver.Warrow[lattice.Interval](l)), botIv, solver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := System(l, sys, sigma, botIv)
	if !rep.OK() {
		t.Fatalf("exact solution rejected: %s", rep)
	}
	if rep.Checked != 3 {
		t.Fatalf("Checked = %d, want 3", rep.Checked)
	}
	if rep.Err() != nil {
		t.Fatalf("Err() = %v on OK report", rep.Err())
	}
	if !strings.Contains(rep.String(), "certified") {
		t.Fatalf("String() = %q", rep.String())
	}
}

// TestSystemRejectsLoweredSolution: lowering one unknown of a certified
// solution yields a counterexample naming exactly that unknown, with the
// recomputed value as evidence.
func TestSystemRejectsLoweredSolution(t *testing.T) {
	l := lattice.Ints
	sys := loopSystem()
	sigma, _, err := solver.SW(sys, l, solver.Op[string](solver.Warrow[lattice.Interval](l)), botIv, solver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mut := make(map[string]lattice.Interval, len(sigma))
	for k, v := range sigma {
		mut[k] = v
	}
	mut["h"] = lattice.Range(0, 10) // strictly below the true invariant [0,100]
	rep := System(l, sys, mut, botIv)
	if rep.OK() {
		t.Fatal("lowered solution certified")
	}
	v := rep.Violations[0]
	if v.Kind != NotPost || v.Unknown != "h" {
		t.Fatalf("counterexample = %+v, want NotPost at h", v)
	}
	// Evidence: f_h(σ') = [0,0] ⊔ (σ'(b) + 1) = [0,0] ⊔ [1,100] = [0,100],
	// since b still holds the unmutated [0,99].
	if !l.Eq(v.Got, lattice.Range(0, 100)) || !l.Eq(v.Want, lattice.Range(0, 10)) {
		t.Fatalf("evidence got=%s want=%s", l.Format(v.Got), l.Format(v.Want))
	}
	if !strings.Contains(rep.String(), "h:") || !strings.Contains(rep.String(), "⋢") {
		t.Fatalf("String() = %q", rep.String())
	}
}

// TestPartialDetectsEscape: a partial assignment that is not closed under
// dependences is flagged with an Escape violation naming the unknown that
// was read outside the domain.
func TestPartialDetectsEscape(t *testing.T) {
	l := lattice.Ints
	sys := loopSystem()
	sigma := map[string]lattice.Interval{
		"h": lattice.Range(0, 100), // reads b, which is absent
	}
	rep := Partial(l, sys.AsPure(), sigma, botIv)
	if rep.OK() {
		t.Fatal("non-closed partial assignment certified")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Kind == Escape && v.Unknown == "b" && v.From == "h" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no Escape(b from h) violation in %s", rep)
	}
}

// TestPartialAcceptsClosedSubset: the SLR result for a query certifies even
// though its domain may be a strict subset of the system.
func TestPartialAcceptsClosedSubset(t *testing.T) {
	l := lattice.Ints
	sys := loopSystem()
	res, err := solver.SLR(sys.AsPure(), l, solver.Op[string](solver.Warrow[lattice.Interval](l)), botIv, "e", solver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Partial(l, sys.AsPure(), res.Values, botIv)
	if !rep.OK() {
		t.Fatalf("SLR result rejected: %s", rep)
	}
}

// sideSystem is a small side-effecting system: two computation unknowns
// contribute to a flow-insensitive accumulator g that has no equation of
// its own, the SLR⁺ pattern for globals.
func sideSystem() eqn.Sides[string, lattice.Interval] {
	l := lattice.Ints
	return func(x string) eqn.SideRHS[string, lattice.Interval] {
		switch x {
		case "root":
			return func(get func(string) lattice.Interval, side func(string, lattice.Interval)) lattice.Interval {
				side("a", lattice.Range(0, 0))
				return get("a").Add(get("g"))
			}
		case "a":
			return func(get func(string) lattice.Interval, side func(string, lattice.Interval)) lattice.Interval {
				v := get("a")
				side("g", l.Join(lattice.Singleton(5), v))
				return l.Meet(v.Add(lattice.Singleton(1)), lattice.Range(0, 10))
			}
		default:
			return nil // g: contributions only
		}
	}
}

// TestSidesAcceptsSLRPlusOutput: the SLR⁺ result of a side-effecting system
// certifies, including side-effect accounting.
func TestSidesAcceptsSLRPlusOutput(t *testing.T) {
	l := lattice.Ints
	sys := sideSystem()
	res, err := solver.SLRPlus(sys, l, solver.Op[string](solver.Warrow[lattice.Interval](l)), botIv, "root", solver.Config{MaxEvals: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	rep := Sides(l, sys, res.Values, botIv)
	if !rep.OK() {
		t.Fatalf("SLR⁺ result rejected: %s", rep)
	}
	if rep.Checked == 0 {
		t.Fatal("no right-hand sides checked")
	}
}

// TestSidesRejectsUncoveredContribution: lowering the side-effected
// accumulator below a replayed contribution yields a SideExceeds violation
// naming both the target and the contributing unknown.
func TestSidesRejectsUncoveredContribution(t *testing.T) {
	l := lattice.Ints
	sys := sideSystem()
	res, err := solver.SLRPlus(sys, l, solver.Op[string](solver.Warrow[lattice.Interval](l)), botIv, "root", solver.Config{MaxEvals: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	res.Values["g"] = lattice.Range(0, 1) // below the [0,10] ⊔ [5,5] contribution
	rep := Sides(l, sys, res.Values, botIv)
	if rep.OK() {
		t.Fatal("uncovered contribution certified")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Kind == SideExceeds && v.Unknown == "g" && v.From == "a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no SideExceeds(g from a) violation in %s", rep)
	}
}

// TestSidesRejectsMissingSideTarget: removing a side-effected unknown from
// the domain is a SideEscape.
func TestSidesRejectsMissingSideTarget(t *testing.T) {
	l := lattice.Ints
	sys := sideSystem()
	res, err := solver.SLRPlus(sys, l, solver.Op[string](solver.Warrow[lattice.Interval](l)), botIv, "root", solver.Config{MaxEvals: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	delete(res.Values, "g")
	rep := Sides(l, sys, res.Values, botIv)
	if rep.OK() {
		t.Fatal("missing side target certified")
	}
	foundEscape := false
	for _, v := range rep.Violations {
		if (v.Kind == SideEscape || v.Kind == Escape) && v.Unknown == "g" {
			foundEscape = true
		}
	}
	if !foundEscape {
		t.Fatalf("no escape violation for g in %s", rep)
	}
}

// TestViolationCap: a candidate violating every equation reports at most
// maxViolations counterexamples.
func TestViolationCap(t *testing.T) {
	l := lattice.Ints
	sys := eqn.NewSystem[int, lattice.Interval]()
	for i := 0; i < 50; i++ {
		sys.Define(i, nil, func(func(int) lattice.Interval) lattice.Interval {
			return lattice.Singleton(1)
		})
	}
	rep := System(l, sys, map[int]lattice.Interval{}, func(int) lattice.Interval { return lattice.EmptyInterval })
	if rep.OK() {
		t.Fatal("all-bottom candidate certified against constant equations")
	}
	if len(rep.Violations) > maxViolations {
		t.Fatalf("%d violations collected, cap is %d", len(rep.Violations), maxViolations)
	}
}
