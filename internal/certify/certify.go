// Package certify checks candidate solutions of equation systems
// independently of the solver that produced them.
//
// Lemma 1 of the paper guarantees that any generic solver instantiated with
// the combined operator ⊟ returns a post-solution whenever it terminates:
// fₓ(σ) ⊑ σ(x) for every unknown x. That property mentions neither the
// iteration order nor the update operator, so it can be re-checked after the
// fact by a single sweep that re-evaluates every right-hand side under the
// final assignment — turning every solver run into a self-verifying one and
// every solver refactor into a machine-checkable change.
//
// The package provides one certifier per system flavour of internal/eqn:
//
//   - System for finite systems solved by the global solvers (RR, W, SRR,
//     SW, PSW);
//   - Partial for partial assignments returned by the local solvers (SLR),
//     which additionally verifies that evaluation never escapes the domain;
//   - Sides for side-effecting systems solved by SLR⁺, which replays each
//     right-hand side with an instrumented side callback and accounts every
//     contribution against the value of its target.
//
// On failure a certifier returns structured counterexamples (unknown, got,
// want) rather than a bare boolean, so a violated run names exactly the
// equation it violates.
package certify

import (
	"fmt"
	"strings"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// Kind classifies a certification violation.
type Kind int

// Violation kinds.
const (
	// NotPost: the re-evaluated right-hand side exceeds the candidate value,
	// fₓ(σ) ⋢ σ(x).
	NotPost Kind = iota
	// Escape: while re-evaluating the right-hand side of Unknown, an unknown
	// outside the candidate's domain was read (partial solutions must be
	// closed under dependences).
	Escape
	// SideExceeds: replaying the right-hand side of From produced a side
	// effect on Unknown whose contribution is not covered by σ(Unknown).
	SideExceeds
	// SideEscape: replaying the right-hand side of From produced a side
	// effect on Unknown, which is outside the candidate's domain.
	SideEscape
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case NotPost:
		return "not-post"
	case Escape:
		return "escape"
	case SideExceeds:
		return "side-exceeds"
	case SideEscape:
		return "side-escape"
	default:
		return "?"
	}
}

// Violation is one structured counterexample.
type Violation[X comparable, D any] struct {
	Kind Kind
	// Unknown is the unknown whose value is violated (NotPost, SideExceeds,
	// SideEscape) or whose evaluation escaped (Escape).
	Unknown X
	// From is the unknown whose right-hand side produced the evidence: for
	// Escape the escaped read target is Unknown and From the reader; for
	// side-effect kinds From is the contributing unknown.
	From X
	// Got is the recomputed evidence: fₓ(σ) for NotPost, the contributed
	// value for side-effect kinds.
	Got D
	// Want is the candidate value σ(Unknown) the evidence must not exceed.
	Want D
}

// maxViolations bounds how many counterexamples a certifier collects; one
// is enough to falsify a run, a handful is enough to debug it.
const maxViolations = 16

// Report is the outcome of a certification sweep.
type Report[X comparable, D any] struct {
	// Checked counts re-evaluated right-hand sides.
	Checked int
	// Violations holds up to maxViolations structured counterexamples;
	// empty iff the candidate certified.
	Violations []Violation[X, D]

	format func(D) string
}

// OK reports whether the candidate certified as a post-solution.
func (r Report[X, D]) OK() bool { return len(r.Violations) == 0 }

// String renders the report; violations include formatted lattice values.
func (r Report[X, D]) String() string {
	if r.OK() {
		return fmt.Sprintf("certified: post-solution verified (%d right-hand sides)", r.Checked)
	}
	format := r.format
	if format == nil {
		format = func(d D) string { return fmt.Sprintf("%v", d) }
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "certification FAILED: %d violation(s) in %d right-hand sides", len(r.Violations), r.Checked)
	for _, v := range r.Violations {
		switch v.Kind {
		case NotPost:
			fmt.Fprintf(&sb, "\n  %v: f(σ) = %s ⋢ σ = %s", v.Unknown, format(v.Got), format(v.Want))
		case Escape:
			fmt.Fprintf(&sb, "\n  %v: evaluation of %v read it outside the solution domain", v.Unknown, v.From)
		case SideExceeds:
			fmt.Fprintf(&sb, "\n  %v: side effect from %v contributes %s ⋢ σ = %s", v.Unknown, v.From, format(v.Got), format(v.Want))
		case SideEscape:
			fmt.Fprintf(&sb, "\n  %v: side effect from %v targets it outside the solution domain", v.Unknown, v.From)
		}
	}
	return sb.String()
}

// Err returns nil for a certified candidate and an error carrying the
// rendered counterexamples otherwise.
func (r Report[X, D]) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("certify: %s", r.String())
}

// System certifies a candidate assignment against a finite system: every
// defined unknown's right-hand side is re-evaluated under σ (absent unknowns
// read as init) and checked to satisfy fₓ(σ) ⊑ σ(x). The check is
// solver-independent and, by Lemma 1, must pass for the result of any
// terminating generic solver instantiated with ⊟.
func System[X comparable, D any](l lattice.Lattice[D], sys *eqn.System[X, D], sigma map[X]D, init func(X) D) Report[X, D] {
	r := Report[X, D]{format: l.Format}
	get := func(y X) D {
		if v, ok := sigma[y]; ok {
			return v
		}
		return init(y)
	}
	for _, x := range sys.Order() {
		got := sys.RHS(x)(get)
		want := get(x)
		r.Checked++
		if !l.Leq(got, want) {
			r.Violations = append(r.Violations, Violation[X, D]{
				Kind: NotPost, Unknown: x, Got: got, Want: want,
			})
			if len(r.Violations) >= maxViolations {
				break
			}
		}
	}
	return r
}

// Partial certifies a partial assignment against a pure (possibly infinite)
// system, as returned by the local solvers: every unknown of dom σ with an
// equation must satisfy fₓ(σ) ⊑ σ(x), and re-evaluation must only read
// unknowns inside dom σ (reads outside the domain are Escape violations and
// evaluate to init so the sweep can continue).
func Partial[X comparable, D any](l lattice.Lattice[D], sys eqn.Pure[X, D], sigma map[X]D, init func(X) D) Report[X, D] {
	r := Report[X, D]{format: l.Format}
	for x, want := range sigma {
		rhs := sys(x)
		if rhs == nil {
			continue
		}
		x := x
		escaped := false
		var escapee X
		get := func(y X) D {
			if v, ok := sigma[y]; ok {
				return v
			}
			if !escaped {
				escaped, escapee = true, y
			}
			return init(y)
		}
		got := rhs(get)
		r.Checked++
		if escaped {
			r.Violations = append(r.Violations, Violation[X, D]{
				Kind: Escape, Unknown: escapee, From: x,
			})
		}
		if !l.Leq(got, want) {
			r.Violations = append(r.Violations, Violation[X, D]{
				Kind: NotPost, Unknown: x, Got: got, Want: want,
			})
		}
		if len(r.Violations) >= maxViolations {
			break
		}
	}
	return r
}

// Sides certifies a partial assignment against a side-effecting system, as
// returned by SLR⁺. Each right-hand side in dom σ is replayed with an
// instrumented side callback; the sweep checks that
//
//   - the returned value satisfies fₓ(σ) ⊑ σ(x),
//   - every replayed side effect (x → z, d) is covered, d ⊑ σ(z) — the
//     side-effect half of the paper's partial post-solution (Theorem 4.1),
//   - neither reads nor side-effect targets escape dom σ.
//
// Because every unknown of dom σ is replayed, the join of all contributions
// into z is covered exactly when each individual contribution is, so no
// per-target accumulation is needed.
func Sides[X comparable, D any](l lattice.Lattice[D], sys eqn.Sides[X, D], sigma map[X]D, init func(X) D) Report[X, D] {
	r := Report[X, D]{format: l.Format}
	for x, want := range sigma {
		rhs := sys(x)
		if rhs == nil {
			continue // side-effected only: covered by its contributors' replays
		}
		x := x
		escaped := false
		var escapee X
		get := func(y X) D {
			if v, ok := sigma[y]; ok {
				return v
			}
			if !escaped {
				escaped, escapee = true, y
			}
			return init(y)
		}
		side := func(z X, d D) {
			if len(r.Violations) >= maxViolations {
				return
			}
			zv, ok := sigma[z]
			if !ok {
				r.Violations = append(r.Violations, Violation[X, D]{
					Kind: SideEscape, Unknown: z, From: x,
				})
				return
			}
			if !l.Leq(d, zv) {
				r.Violations = append(r.Violations, Violation[X, D]{
					Kind: SideExceeds, Unknown: z, From: x, Got: d, Want: zv,
				})
			}
		}
		got := rhs(get, side)
		r.Checked++
		if escaped && len(r.Violations) < maxViolations {
			r.Violations = append(r.Violations, Violation[X, D]{
				Kind: Escape, Unknown: escapee, From: x,
			})
		}
		if !l.Leq(got, want) && len(r.Violations) < maxViolations {
			r.Violations = append(r.Violations, Violation[X, D]{
				Kind: NotPost, Unknown: x, Got: got, Want: want,
			})
		}
		if len(r.Violations) >= maxViolations {
			break
		}
	}
	return r
}
