// Package cint implements a front-end for mini-C, the C-like language the
// analyzer operates on: lexer, recursive-descent parser, AST, and semantic
// analysis (scoping and type checking).
//
// Mini-C covers the program fragment the paper's evaluation exercises:
// global and local int variables, pointers, fixed-size int arrays,
// functions with int/pointer parameters, the usual statements (if, while,
// for, do-while, return, break, continue), and side-effect-free expressions
// with one CIL-like normalization: function calls appear only at statement
// level, either as `x = f(e, …);` or `f(e, …);` — never nested inside an
// expression. This mirrors how CIL simplifies C for Goblint and keeps
// transfer functions compositional.
package cint

import "fmt"

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// TokKind enumerates token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt

	// Keywords.
	TokKwInt
	TokKwVoid
	TokKwIf
	TokKwElse
	TokKwWhile
	TokKwFor
	TokKwDo
	TokKwReturn
	TokKwBreak
	TokKwContinue
	TokKwAssert

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokSemi
	TokComma
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokNot    // !
	TokLt     // <
	TokLe     // <=
	TokGt     // >
	TokGe     // >=
	TokEq     // ==
	TokNe     // !=
	TokAndAnd // &&
	TokOrOr   // ||
)

var tokNames = map[TokKind]string{
	TokEOF:        "EOF",
	TokIdent:      "identifier",
	TokInt:        "integer literal",
	TokKwInt:      "'int'",
	TokKwVoid:     "'void'",
	TokKwIf:       "'if'",
	TokKwElse:     "'else'",
	TokKwWhile:    "'while'",
	TokKwFor:      "'for'",
	TokKwDo:       "'do'",
	TokKwReturn:   "'return'",
	TokKwBreak:    "'break'",
	TokKwContinue: "'continue'",
	TokKwAssert:   "'assert'",
	TokLParen:     "'('",
	TokRParen:     "')'",
	TokLBrace:     "'{'",
	TokRBrace:     "'}'",
	TokLBracket:   "'['",
	TokRBracket:   "']'",
	TokSemi:       "';'",
	TokComma:      "','",
	TokAssign:     "'='",
	TokPlus:       "'+'",
	TokMinus:      "'-'",
	TokStar:       "'*'",
	TokSlash:      "'/'",
	TokPercent:    "'%'",
	TokAmp:        "'&'",
	TokNot:        "'!'",
	TokLt:         "'<'",
	TokLe:         "'<='",
	TokGt:         "'>'",
	TokGe:         "'>='",
	TokEq:         "'=='",
	TokNe:         "'!='",
	TokAndAnd:     "'&&'",
	TokOrOr:       "'||'",
}

// String renders the token kind for diagnostics.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"int":      TokKwInt,
	"void":     TokKwVoid,
	"if":       TokKwIf,
	"else":     TokKwElse,
	"while":    TokKwWhile,
	"for":      TokKwFor,
	"do":       TokKwDo,
	"return":   TokKwReturn,
	"break":    TokKwBreak,
	"continue": TokKwContinue,
	"assert":   TokKwAssert,
}

// Token is a lexeme with position.
type Token struct {
	Kind TokKind
	Text string // identifier or literal spelling
	Val  int64  // value for TokInt
	Pos  Pos
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
