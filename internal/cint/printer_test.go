package cint

import (
	"strings"
	"testing"
)

// roundTrip parses src, prints it, reparses the output, and checks the
// second print is identical — printing is a projection (idempotent after
// one normalization pass).
func roundTrip(t *testing.T, src string) string {
	t.Helper()
	p1, err := Parse(src)
	if err != nil {
		t.Fatalf("parse original: %v", err)
	}
	out1 := Print(p1)
	p2, err := Parse(out1)
	if err != nil {
		t.Fatalf("reparse printed output: %v\n%s", err, out1)
	}
	out2 := Print(p2)
	if out1 != out2 {
		t.Fatalf("printing is not stable:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
	return out1
}

func TestPrintRoundTripBasics(t *testing.T) {
	sources := []string{
		`int main() { return 0; }`,
		`int g = -4; int main() { return g; }`,
		`int a[3]; int main() { a[0] = 1; return a[0]; }`,
		`int main() { int i; for (i = 0; i < 3; i = i + 1) { ; } return i; }`,
		`int main() { int i; i = 9; while (i > 0) { i = i - 2; } return i; }`,
		`int main() { int i; i = 0; do { i = i + 1; } while (i < 4); return i; }`,
		`int main() { int x; if (x < 0) { x = -x; } else { x = x + 1; } return x; }`,
		`int main() { int x; if (x < 0) x = 1; return x; }`, // unbraced then
		`void f(int *p, int v) { *p = v; }
		 int main() { int x; f(&x, 3); return x; }`,
		`int main() { int i; i = 1; assert(i == 1); return i; }`,
		`int main() { int a; int b; if (a < 1 && b > 2 || !a) { a = 1; } return a; }`,
		`int id(int x) { return x; } int main() { int y; y = id(7); id(1); return y; }`,
		`int main() { int i; i = 0; while (1) { i = i + 1; if (i > 3) { break; } continue; } return i; }`,
		`int main() { for (int k = 0; k < 2; k = k + 1) { ; } return 0; }`,
		`int main() { int **pp; int *p; int x; p = &x; pp = &p; **pp = 5; return x; }`,
	}
	for _, src := range sources {
		roundTrip(t, src)
	}
}

// TestPrintRoundTripSemantics: the printed program behaves identically —
// checked by structural identity of the normalized form plus a quick sanity
// that sema sees the same locals.
func TestPrintRoundTripSemantics(t *testing.T) {
	src := `
int total = 0;
void add(int v) { total = total + v; }
int main() {
    int i;
    for (i = 0; i < 5; i = i + 1) {
        add(i);
    }
    return total;
}`
	out := roundTrip(t, src)
	p2 := MustParse(out)
	if len(p2.FuncByName["main"].Locals) != 1 {
		t.Errorf("locals changed after printing:\n%s", out)
	}
	if !strings.Contains(out, "for (i = 0; (i < 5); i = (i + 1))") {
		t.Errorf("for header mangled:\n%s", out)
	}
}

// TestPrintNormalizesBraces: single statements become braced blocks.
func TestPrintNormalizesBraces(t *testing.T) {
	out := roundTrip(t, `int main() { int x; if (x > 0) x = 1; return x; }`)
	if !strings.Contains(out, "if ((x > 0)) {") {
		t.Errorf("missing normalized block:\n%s", out)
	}
}
