package cint

import (
	"fmt"
	"strings"
)

// Print renders a checked (or merely parsed) program back to mini-C source.
// The output reparses to a structurally identical program (see the
// round-trip property tests), which makes Print usable for program
// transformation tools and for dumping generated programs.
func Print(prog *Program) string {
	p := &printer{}
	for _, g := range prog.Globals {
		p.varDecl(g)
		p.w(";\n")
	}
	if len(prog.Globals) > 0 {
		p.w("\n")
	}
	for i, fn := range prog.Funcs {
		if i > 0 {
			p.w("\n")
		}
		p.funcDecl(fn)
	}
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) w(format string, args ...any) {
	fmt.Fprintf(&p.sb, format, args...)
}

func (p *printer) line(format string, args ...any) {
	p.sb.WriteString(strings.Repeat("    ", p.indent))
	p.w(format, args...)
	p.sb.WriteByte('\n')
}

// typePrefix renders the base-and-stars part of a declaration ("int **").
func typePrefix(t *Type) string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypePtr:
		return typePrefix(t.Elem) + "*"
	case TypeArray:
		return typePrefix(t.Elem)
	default:
		return "?"
	}
}

// varDecl renders "int *p" or "int a[4]" (without the semicolon).
func (p *printer) varDecl(v *VarDecl) {
	p.w("%s %s", typePrefix(v.Type), v.Name)
	if v.Type.Kind == TypeArray {
		p.w("[%d]", v.Type.Len)
	}
	if v.Init != nil {
		p.w(" = %s", v.Init)
	}
}

func (p *printer) funcDecl(fn *FuncDecl) {
	params := make([]string, len(fn.Params))
	for i, prm := range fn.Params {
		params[i] = fmt.Sprintf("%s %s", typePrefix(prm.Type), prm.Name)
	}
	p.w("%s %s(%s) ", typePrefix(fn.Ret), fn.Name, strings.Join(params, ", "))
	p.block(fn.Body)
	p.w("\n")
}

// block renders { ... } starting at the current position.
func (p *printer) block(b *BlockStmt) {
	p.w("{\n")
	p.indent++
	for _, s := range b.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

// stmtInline renders simple statements without the trailing semicolon, for
// for-headers.
func stmtInline(s Stmt) string {
	switch s := s.(type) {
	case *DeclStmt:
		var sb strings.Builder
		sb.WriteString(typePrefix(s.Decl.Type) + " " + s.Decl.Name)
		if s.Decl.Type.Kind == TypeArray {
			fmt.Fprintf(&sb, "[%d]", s.Decl.Type.Len)
		}
		if s.Decl.Init != nil {
			fmt.Fprintf(&sb, " = %s", s.Decl.Init)
		}
		return sb.String()
	case *AssignStmt:
		if s.Call != nil {
			return fmt.Sprintf("%s = %s", s.Lhs, s.Call)
		}
		return fmt.Sprintf("%s = %s", s.Lhs, s.Rhs)
	case *ExprStmt:
		return s.Call.String()
	default:
		return ""
	}
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *BlockStmt:
		p.sb.WriteString(strings.Repeat("    ", p.indent))
		p.block(s)
	case *EmptyStmt:
		p.line(";")
	case *DeclStmt, *AssignStmt, *ExprStmt:
		p.line("%s;", stmtInline(s))
	case *IfStmt:
		p.sb.WriteString(strings.Repeat("    ", p.indent))
		p.w("if (%s) ", s.Cond)
		p.stmtAsBlock(s.Then)
		if s.Else != nil {
			// Reopen the line for the else.
			trimNewline(&p.sb)
			p.w(" else ")
			p.stmtAsBlock(s.Else)
		}
	case *WhileStmt:
		p.sb.WriteString(strings.Repeat("    ", p.indent))
		p.w("while (%s) ", s.Cond)
		p.stmtAsBlock(s.Body)
	case *DoWhileStmt:
		p.sb.WriteString(strings.Repeat("    ", p.indent))
		p.w("do ")
		p.stmtAsBlock(s.Body)
		trimNewline(&p.sb)
		p.w(" while (%s);\n", s.Cond)
	case *ForStmt:
		p.sb.WriteString(strings.Repeat("    ", p.indent))
		cond := ""
		if s.Cond != nil {
			cond = s.Cond.String()
		}
		post := ""
		if s.Post != nil {
			post = stmtInline(s.Post)
		}
		init := ""
		if s.Init != nil {
			init = stmtInline(s.Init)
		}
		p.w("for (%s; %s; %s) ", init, cond, post)
		p.stmtAsBlock(s.Body)
	case *ReturnStmt:
		if s.Value != nil {
			p.line("return %s;", s.Value)
		} else {
			p.line("return;")
		}
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *AssertStmt:
		p.line("assert(%s);", s.Cond)
	default:
		p.line("/* unhandled %T */", s)
	}
}

// stmtAsBlock renders a statement as a braced block (normalizing single
// statements), keeping the printer position after the closing brace line.
func (p *printer) stmtAsBlock(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		p.block(b)
		return
	}
	p.w("{\n")
	p.indent++
	p.stmt(s)
	p.indent--
	p.line("}")
}

// trimNewline removes one trailing newline so a continuation ("else",
// "while") can share the line with the closing brace.
func trimNewline(sb *strings.Builder) {
	s := sb.String()
	if strings.HasSuffix(s, "\n") {
		sb.Reset()
		sb.WriteString(s[:len(s)-1])
	}
}
