package cint

import "fmt"

// Parser is a recursive-descent parser for mini-C.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes, parses and semantically checks a mini-C translation unit.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and embedded
// benchmark programs.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("cint.MustParse: %v", err))
	}
	return prog
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { return p.toks[p.pos+1] }

func (p *Parser) bump() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.bump()
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, describe(p.cur()))
	}
	return p.bump(), nil
}

func describe(t Token) string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokInt:
		return fmt.Sprintf("integer %s", t.Text)
	default:
		return t.Kind.String()
	}
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{FuncByName: make(map[string]*FuncDecl)}
	for !p.at(TokEOF) {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		typ := p.parseStars(base)
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if p.at(TokLParen) {
			fn, err := p.parseFuncRest(typ, nameTok)
			if err != nil {
				return nil, err
			}
			if _, dup := prog.FuncByName[fn.Name]; dup {
				return nil, errf(fn.Pos, "duplicate function %q", fn.Name)
			}
			prog.Funcs = append(prog.Funcs, fn)
			prog.FuncByName[fn.Name] = fn
			continue
		}
		decl, err := p.parseVarRest(typ, nameTok, true)
		if err != nil {
			return nil, err
		}
		decl.Global = true
		prog.Globals = append(prog.Globals, decl)
	}
	return prog, nil
}

// parseBaseType parses 'int' or 'void'.
func (p *Parser) parseBaseType() (*Type, error) {
	switch p.cur().Kind {
	case TokKwInt:
		p.bump()
		return IntType, nil
	case TokKwVoid:
		p.bump()
		return VoidType, nil
	default:
		return nil, errf(p.cur().Pos, "expected type, found %s", describe(p.cur()))
	}
}

// parseStars wraps base in one pointer layer per '*'.
func (p *Parser) parseStars(base *Type) *Type {
	for p.accept(TokStar) {
		base = PtrTo(base)
	}
	return base
}

// parseVarRest parses the rest of a variable declaration after the name:
// optional array suffix, optional initializer, and the terminating ';'.
func (p *Parser) parseVarRest(typ *Type, name Token, global bool) (*VarDecl, error) {
	if typ.Kind == TypeVoid {
		return nil, errf(name.Pos, "variable %q has void type", name.Text)
	}
	if p.accept(TokLBracket) {
		lenTok, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		if lenTok.Val <= 0 {
			return nil, errf(lenTok.Pos, "array length must be positive")
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		typ = ArrayOf(typ, lenTok.Val)
	}
	decl := &VarDecl{Name: name.Text, Type: typ, Pos: name.Pos}
	if p.accept(TokAssign) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if global {
			if _, ok := constFold(init); !ok {
				return nil, errf(init.Position(), "global initializer must be a constant expression")
			}
		}
		decl.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return decl, nil
}

// constFold evaluates constant integer expressions (literals with unary
// minus and arithmetic).
func constFold(e Expr) (int64, bool) {
	switch e := e.(type) {
	case *IntLit:
		return e.Value, true
	case *UnaryExpr:
		if e.Op == TokMinus {
			if v, ok := constFold(e.X); ok {
				return -v, true
			}
		}
	case *BinaryExpr:
		x, okx := constFold(e.X)
		y, oky := constFold(e.Y)
		if okx && oky {
			switch e.Op {
			case TokPlus:
				return x + y, true
			case TokMinus:
				return x - y, true
			case TokStar:
				return x * y, true
			case TokSlash:
				if y != 0 {
					return x / y, true
				}
			case TokPercent:
				if y != 0 {
					return x % y, true
				}
			}
		}
	}
	return 0, false
}

func (p *Parser) parseFuncRest(ret *Type, name Token) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name.Text, Ret: ret, Pos: name.Pos}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if p.at(TokKwVoid) && p.next().Kind == TokRParen {
		p.bump() // f(void)
	}
	for !p.at(TokRParen) {
		if len(fn.Params) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		typ := p.parseStars(base)
		if typ.Kind == TypeVoid {
			return nil, errf(p.cur().Pos, "parameter has void type")
		}
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, &VarDecl{Name: nameTok.Text, Type: typ, Pos: nameTok.Pos})
	}
	p.bump() // ')'
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{stmtBase: stmtBase{pos: lb.Pos}}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, errf(p.cur().Pos, "unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.bump() // '}'
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokSemi:
		p.bump()
		return &EmptyStmt{stmtBase{tok.Pos}}, nil
	case TokKwInt:
		p.bump()
		typ := p.parseStars(IntType)
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		decl, err := p.parseVarRest(typ, nameTok, false)
		if err != nil {
			return nil, err
		}
		return &DeclStmt{stmtBase{tok.Pos}, decl}, nil
	case TokKwIf:
		p.bump()
		cond, err := p.parseParenExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(TokKwElse) {
			if els, err = p.parseStmt(); err != nil {
				return nil, err
			}
		}
		return &IfStmt{stmtBase{tok.Pos}, cond, then, els}, nil
	case TokKwWhile:
		p.bump()
		cond, err := p.parseParenExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{stmtBase{tok.Pos}, cond, body}, nil
	case TokKwDo:
		p.bump()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKwWhile); err != nil {
			return nil, err
		}
		cond, err := p.parseParenExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &DoWhileStmt{stmtBase{tok.Pos}, body, cond}, nil
	case TokKwFor:
		return p.parseFor()
	case TokKwReturn:
		p.bump()
		var val Expr
		if !p.at(TokSemi) {
			var err error
			if val, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ReturnStmt{stmtBase{tok.Pos}, val}, nil
	case TokKwAssert:
		p.bump()
		cond, err := p.parseParenExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &AssertStmt{stmtBase{tok.Pos}, cond}, nil
	case TokKwBreak:
		p.bump()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{stmtBase{tok.Pos}}, nil
	case TokKwContinue:
		p.bump()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{stmtBase{tok.Pos}}, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *Parser) parseFor() (Stmt, error) {
	tok := p.bump() // 'for'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var initStmt Stmt
	if !p.at(TokSemi) {
		if p.at(TokKwInt) {
			declTok := p.bump()
			typ := p.parseStars(IntType)
			nameTok, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			decl, err := p.parseVarRest(typ, nameTok, false) // consumes ';'
			if err != nil {
				return nil, err
			}
			initStmt = &DeclStmt{stmtBase{declTok.Pos}, decl}
		} else {
			s, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			initStmt = s
		}
	} else {
		p.bump() // ';'
	}
	var cond Expr
	if !p.at(TokSemi) {
		var err error
		if cond, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	var post Stmt
	if !p.at(TokRParen) {
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		post = s
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &ForStmt{stmtBase{tok.Pos}, initStmt, cond, post, body}, nil
}

// parseSimpleStmt parses an assignment `lhs = expr`, an assignment from a
// call `lhs = f(args)`, or a call statement `f(args)` — without the
// trailing semicolon.
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	tok := p.cur()
	if tok.Kind == TokIdent && p.next().Kind == TokLParen {
		call, err := p.parseCall()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{stmtBase{tok.Pos}, call}, nil
	}
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	if p.at(TokIdent) && p.next().Kind == TokLParen {
		call, err := p.parseCall()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{stmtBase: stmtBase{tok.Pos}, Lhs: lhs, Call: call}, nil
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{stmtBase: stmtBase{tok.Pos}, Lhs: lhs, Rhs: rhs}, nil
}

func (p *Parser) parseCall() (*CallExpr, error) {
	nameTok := p.bump()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	call := &CallExpr{exprBase: exprBase{pos: nameTok.Pos}, Name: nameTok.Text}
	for !p.at(TokRParen) {
		if len(call.Args) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
	}
	p.bump() // ')'
	return call, nil
}

func (p *Parser) parseParenExpr() (Expr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return e, nil
}

// Expression precedence, loosest first: || , && , comparison, + - , * / %.

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(TokOrOr) {
		op := p.bump()
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{exprBase{pos: op.Pos}, op.Kind, x, y}
	}
	return x, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	x, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.at(TokAndAnd) {
		op := p.bump()
		y, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{exprBase{pos: op.Pos}, op.Kind, x, y}
	}
	return x, nil
}

func (p *Parser) parseCmp() (Expr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case TokLt, TokLe, TokGt, TokGe, TokEq, TokNe:
		op := p.bump()
		y, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{exprBase{pos: op.Pos}, op.Kind, x, y}, nil
	}
	return x, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(TokPlus) || p.at(TokMinus) {
		op := p.bump()
		y, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{exprBase{pos: op.Pos}, op.Kind, x, y}
	}
	return x, nil
}

func (p *Parser) parseMul() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(TokStar) || p.at(TokSlash) || p.at(TokPercent) {
		op := p.bump()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{exprBase{pos: op.Pos}, op.Kind, x, y}
	}
	return x, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus, TokNot, TokStar, TokAmp:
		op := p.bump()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{exprBase{pos: op.Pos}, op.Kind, x}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(TokLBracket) {
		lb := p.bump()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		x = &IndexExpr{exprBase{pos: lb.Pos}, x, idx}
	}
	return x, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokInt:
		p.bump()
		return &IntLit{exprBase{pos: tok.Pos}, tok.Val}, nil
	case TokIdent:
		if p.next().Kind == TokLParen {
			return nil, errf(tok.Pos, "call to %q nested in an expression; calls may only appear as `x = f(…);` or `f(…);`", tok.Text)
		}
		p.bump()
		return &Ident{exprBase: exprBase{pos: tok.Pos}, Name: tok.Text}, nil
	case TokLParen:
		p.bump()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errf(tok.Pos, "expected expression, found %s", describe(tok))
	}
}
