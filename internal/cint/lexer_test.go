package cint

import "testing"

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("int x = 42; // comment\nx = x + 1;")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokKwInt, TokIdent, TokAssign, TokInt, TokSemi,
		TokIdent, TokAssign, TokIdent, TokPlus, TokInt, TokSemi, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if toks[3].Val != 42 {
		t.Errorf("literal value = %d", toks[3].Val)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("< <= > >= == != && || ! & * / % + - =")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokLt, TokLe, TokGt, TokGe, TokEq, TokNe, TokAndAnd, TokOrOr,
		TokNot, TokAmp, TokStar, TokSlash, TokPercent, TokPlus, TokMinus,
		TokAssign, TokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a /* multi\nline */ b // rest\nc")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 || toks[0].Text != "a" || toks[1].Text != "b" || toks[2].Text != "c" {
		t.Fatalf("tokens: %v", toks)
	}
	if toks[2].Pos.Line != 3 {
		t.Errorf("c at line %d, want 3", toks[2].Pos.Line)
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := Lex("if ifx while whiley return returns")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokKwIf, TokIdent, TokKwWhile, TokIdent, TokKwReturn, TokIdent, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "/* unterminated", "99999999999999999999", "a | b"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("b at %v", toks[1].Pos)
	}
}
