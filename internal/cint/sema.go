package cint

import "fmt"

// Check performs semantic analysis on a parsed program: it resolves
// identifiers to declarations, assigns unique IDs, type-checks expressions
// and statements, and records which variables have their address taken.
// Parse calls Check automatically; it is exported for tools that build ASTs
// programmatically.
func Check(prog *Program) error {
	c := &checker{prog: prog, globals: make(map[string]*VarDecl)}
	for _, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return errf(g.Pos, "duplicate global %q", g.Name)
		}
		if _, isFn := prog.FuncByName[g.Name]; isFn {
			return errf(g.Pos, "global %q collides with a function name", g.Name)
		}
		g.Global = true
		g.ID = g.Name
		c.globals[g.Name] = g
		if g.Init != nil {
			if err := c.checkExpr(g.Init); err != nil {
				return err
			}
			if g.Init.Type().Kind != TypeInt || g.Type.Kind != TypeInt {
				return errf(g.Pos, "global initializer only supported for int globals")
			}
		}
	}
	for _, fn := range prog.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	prog    *Program
	globals map[string]*VarDecl

	fn     *FuncDecl
	scopes []map[string]*VarDecl
	nlocal int
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*VarDecl)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(v *VarDecl) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[v.Name]; dup {
		return errf(v.Pos, "redeclaration of %q in the same scope", v.Name)
	}
	v.Fn = c.fn
	v.ID = fmt.Sprintf("%s::%s#%d", c.fn.Name, v.Name, c.nlocal)
	c.nlocal++
	c.fn.Locals = append(c.fn.Locals, v)
	top[v.Name] = v
	return nil
}

func (c *checker) lookup(name string) *VarDecl {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v
		}
	}
	return c.globals[name]
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.fn = fn
	c.nlocal = 0
	c.scopes = nil
	c.pushScope()
	defer c.popScope()
	for _, p := range fn.Params {
		if err := c.declare(p); err != nil {
			return err
		}
	}
	return c.checkBlock(fn.Body)
}

func (c *checker) checkBlock(blk *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range blk.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return c.checkBlock(s)
	case *EmptyStmt:
		return nil
	case *DeclStmt:
		if s.Decl.Init != nil {
			if err := c.checkExpr(s.Decl.Init); err != nil {
				return err
			}
			if !assignable(s.Decl.Type, s.Decl.Init.Type()) {
				return errf(s.Decl.Pos, "cannot initialize %s with %s", s.Decl.Type, s.Decl.Init.Type())
			}
		}
		return c.declare(s.Decl)
	case *AssignStmt:
		if err := c.checkLvalue(s.Lhs); err != nil {
			return err
		}
		if s.Call != nil {
			if err := c.checkCall(s.Call); err != nil {
				return err
			}
			if !assignable(s.Lhs.Type(), s.Call.Fn.Ret) {
				return errf(s.Position(), "cannot assign %s result of %q to %s",
					s.Call.Fn.Ret, s.Call.Name, s.Lhs.Type())
			}
			return nil
		}
		if err := c.checkExpr(s.Rhs); err != nil {
			return err
		}
		if !assignable(s.Lhs.Type(), s.Rhs.Type()) {
			return errf(s.Position(), "cannot assign %s to %s", s.Rhs.Type(), s.Lhs.Type())
		}
		return nil
	case *ExprStmt:
		return c.checkCall(s.Call)
	case *IfStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		return c.checkStmt(s.Body)
	case *DoWhileStmt:
		if err := c.checkStmt(s.Body); err != nil {
			return err
		}
		return c.checkCond(s.Cond)
	case *ForStmt:
		c.pushScope() // the for header opens a scope for its declaration
		defer c.popScope()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.checkCond(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkStmt(s.Post); err != nil {
				return err
			}
		}
		return c.checkStmt(s.Body)
	case *ReturnStmt:
		if s.Value == nil {
			if c.fn.Ret.Kind != TypeVoid {
				return errf(s.Position(), "function %q must return %s", c.fn.Name, c.fn.Ret)
			}
			return nil
		}
		if c.fn.Ret.Kind == TypeVoid {
			return errf(s.Position(), "void function %q returns a value", c.fn.Name)
		}
		if err := c.checkExpr(s.Value); err != nil {
			return err
		}
		if !assignable(c.fn.Ret, s.Value.Type()) {
			return errf(s.Position(), "return type mismatch: %s vs %s", s.Value.Type(), c.fn.Ret)
		}
		return nil
	case *AssertStmt:
		return c.checkCond(s.Cond)
	case *BreakStmt, *ContinueStmt:
		return nil
	default:
		return errf(s.Position(), "unhandled statement %T", s)
	}
}

// checkCond checks a branch condition; any int or pointer value is allowed
// (nonzero means true).
func (c *checker) checkCond(e Expr) error {
	if err := c.checkExpr(e); err != nil {
		return err
	}
	if e.Type().Kind == TypeVoid {
		return errf(e.Position(), "condition has void type")
	}
	return nil
}

// assignable reports whether a value of type src may be stored in dst.
// Array-to-pointer decay is applied to src.
func assignable(dst, src *Type) bool {
	if dst == nil || src == nil {
		return false
	}
	src = decay(src)
	return dst.Equal(src)
}

// decay converts an array type to the corresponding pointer type.
func decay(t *Type) *Type {
	if t != nil && t.Kind == TypeArray {
		return PtrTo(t.Elem)
	}
	return t
}

func (c *checker) checkLvalue(e Expr) error {
	switch e := e.(type) {
	case *Ident:
		if err := c.checkExpr(e); err != nil {
			return err
		}
		if e.Obj.Type.Kind == TypeArray {
			return errf(e.Position(), "cannot assign to array %q", e.Name)
		}
		return nil
	case *UnaryExpr:
		if e.Op != TokStar {
			return errf(e.Position(), "expression is not assignable")
		}
		return c.checkExpr(e)
	case *IndexExpr:
		return c.checkExpr(e)
	default:
		return errf(e.Position(), "expression is not assignable")
	}
}

func (c *checker) checkCall(call *CallExpr) error {
	fn, ok := c.prog.FuncByName[call.Name]
	if !ok {
		return errf(call.Position(), "call to undefined function %q", call.Name)
	}
	call.Fn = fn
	call.typ = fn.Ret
	if len(call.Args) != len(fn.Params) {
		return errf(call.Position(), "%q expects %d arguments, got %d",
			call.Name, len(fn.Params), len(call.Args))
	}
	for i, a := range call.Args {
		if err := c.checkExpr(a); err != nil {
			return err
		}
		if !assignable(fn.Params[i].Type, a.Type()) {
			return errf(a.Position(), "argument %d of %q: cannot pass %s as %s",
				i+1, call.Name, a.Type(), fn.Params[i].Type)
		}
	}
	return nil
}

func (c *checker) checkExpr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		e.typ = IntType
		return nil
	case *Ident:
		obj := c.lookup(e.Name)
		if obj == nil {
			return errf(e.Position(), "undefined variable %q", e.Name)
		}
		e.Obj = obj
		e.typ = obj.Type
		return nil
	case *UnaryExpr:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		xt := e.X.Type()
		switch e.Op {
		case TokMinus, TokNot:
			if xt.Kind != TypeInt {
				return errf(e.Position(), "operand of %s must be int, got %s", e.Op, xt)
			}
			e.typ = IntType
		case TokStar:
			xt = decay(xt)
			if xt.Kind != TypePtr {
				return errf(e.Position(), "cannot dereference %s", xt)
			}
			e.typ = xt.Elem
		case TokAmp:
			id, ok := e.X.(*Ident)
			if !ok {
				return errf(e.Position(), "can only take the address of a variable")
			}
			if id.Obj.Type.Kind == TypeArray {
				return errf(e.Position(), "&array is not supported; arrays decay to pointers")
			}
			id.Obj.AddrTaken = true
			e.typ = PtrTo(id.Obj.Type)
		default:
			return errf(e.Position(), "unhandled unary operator %s", e.Op)
		}
		return nil
	case *BinaryExpr:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		if err := c.checkExpr(e.Y); err != nil {
			return err
		}
		xt, yt := decay(e.X.Type()), decay(e.Y.Type())
		switch e.Op {
		case TokPlus, TokMinus, TokStar, TokSlash, TokPercent, TokAndAnd, TokOrOr:
			if xt.Kind != TypeInt || yt.Kind != TypeInt {
				return errf(e.Position(), "operands of %s must be int, got %s and %s", e.Op, xt, yt)
			}
		case TokLt, TokLe, TokGt, TokGe:
			if xt.Kind != TypeInt || yt.Kind != TypeInt {
				return errf(e.Position(), "operands of %s must be int, got %s and %s", e.Op, xt, yt)
			}
		case TokEq, TokNe:
			if !xt.Equal(yt) {
				return errf(e.Position(), "operands of %s must have the same type, got %s and %s", e.Op, xt, yt)
			}
		default:
			return errf(e.Position(), "unhandled binary operator %s", e.Op)
		}
		e.typ = IntType
		return nil
	case *IndexExpr:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		if err := c.checkExpr(e.Idx); err != nil {
			return err
		}
		xt := decay(e.X.Type())
		if xt.Kind != TypePtr {
			return errf(e.Position(), "cannot index %s", e.X.Type())
		}
		if e.Idx.Type().Kind != TypeInt {
			return errf(e.Idx.Position(), "array index must be int")
		}
		e.typ = xt.Elem
		return nil
	case *CallExpr:
		return errf(e.Position(), "calls may only appear at statement level")
	default:
		return errf(e.Position(), "unhandled expression %T", e)
	}
}
