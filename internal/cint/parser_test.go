package cint

import (
	"strings"
	"testing"
)

const exampleProgram = `
// The program of the paper's Example 7.
int g = 0;

void f(int b) {
    if (b) { g = b + 1; } else { g = -b - 1; }
}

int main() {
    f(1);
    f(2);
    return 0;
}
`

func TestParseExample7(t *testing.T) {
	prog, err := Parse(exampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 1 || prog.Globals[0].Name != "g" {
		t.Fatalf("globals: %v", prog.Globals)
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("funcs: %d", len(prog.Funcs))
	}
	f := prog.FuncByName["f"]
	if f == nil || len(f.Params) != 1 || f.Params[0].Name != "b" {
		t.Fatalf("f: %+v", f)
	}
	if f.Ret.Kind != TypeVoid {
		t.Errorf("f returns %s", f.Ret)
	}
	if prog.FuncByName["main"].Ret.Kind != TypeInt {
		t.Error("main should return int")
	}
}

func TestParseStatements(t *testing.T) {
	src := `
int main() {
    int i;
    int a[10];
    int *p;
    p = &i;
    *p = 3;
    for (i = 0; i < 10; i = i + 1) { a[i] = i; }
    while (i > 0) { i = i - 1; }
    do { i = i + 2; } while (i < 4);
    if (i == 4 && a[0] >= 0 || !i) { ; } else { break_loop: ; }
    return 0;
}
`
	// Remove the label (not supported) to keep the source valid.
	src = strings.Replace(src, "break_loop: ;", ";", 1)
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	main := prog.FuncByName["main"]
	if len(main.Locals) != 3 {
		t.Errorf("locals: %d, want 3", len(main.Locals))
	}
	// Local IDs are function-qualified and unique.
	seen := map[string]bool{}
	for _, l := range main.Locals {
		if seen[l.ID] {
			t.Errorf("duplicate local ID %s", l.ID)
		}
		seen[l.ID] = true
		if !strings.HasPrefix(l.ID, "main::") {
			t.Errorf("local ID %s not function-qualified", l.ID)
		}
	}
}

func TestParseForWithDecl(t *testing.T) {
	prog, err := Parse(`int main() { int s; s = 0; for (int i = 0; i < 4; i = i + 1) { s = s + i; } return s; }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(prog.FuncByName["main"].Locals); got != 2 {
		t.Errorf("locals = %d, want 2", got)
	}
}

func TestParseGlobalArrayAndInit(t *testing.T) {
	prog, err := Parse(`
int buf[16];
int limit = 3 * 5 + 1;
int neg = -7;
int main() { return limit; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Globals[0].Type.Kind != TypeArray || prog.Globals[0].Type.Len != 16 {
		t.Errorf("buf type: %s", prog.Globals[0].Type)
	}
	if v, ok := constFold(prog.Globals[1].Init); !ok || v != 16 {
		t.Errorf("limit init folds to %d, %v", v, ok)
	}
	if v, ok := constFold(prog.Globals[2].Init); !ok || v != -7 {
		t.Errorf("neg init folds to %d, %v", v, ok)
	}
}

func TestParseCallForms(t *testing.T) {
	prog, err := Parse(`
int id(int x) { return x; }
int main() {
    int y;
    id(3);
    y = id(4);
    return y;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.FuncByName["main"].Body.Stmts
	if _, ok := body[1].(*ExprStmt); !ok {
		t.Errorf("statement 1 is %T, want *ExprStmt", body[1])
	}
	as, ok := body[2].(*AssignStmt)
	if !ok || as.Call == nil || as.Call.Name != "id" {
		t.Errorf("statement 2 is %T (call %v)", body[2], as)
	}
}

func TestParseRejectsNestedCall(t *testing.T) {
	_, err := Parse(`
int id(int x) { return x; }
int main() { int y; y = 1 + id(3); return y; }
`)
	if err == nil || !strings.Contains(err.Error(), "nested") {
		t.Errorf("expected nested-call error, got %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`int main() { return 0 }`,            // missing semicolon
		`int main() { if i { return 0; } }`,  // missing parens
		`int main() {`,                       // unterminated block
		`void x;`,                            // void variable
		`int a[0]; int main() { return 0; }`, // zero-length array
		`int main() { 3 = x; return 0; }`,    // bad lvalue start
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	prog, err := Parse(`int main() { int x; int y; x = 1; y = (x + 2) * -x; if (x <= y && y != 0) { y = y / 2 % 3; } return y; }`)
	if err != nil {
		t.Fatal(err)
	}
	// Smoke-test String() on a deep expression.
	body := prog.FuncByName["main"].Body.Stmts
	as := body[3].(*AssignStmt)
	if got := as.Rhs.String(); got != "((x + 2) * -x)" {
		t.Errorf("String = %q", got)
	}
}
