package cint

import (
	"strings"
	"testing"
)

func TestSemaResolution(t *testing.T) {
	prog, err := Parse(`
int g;
int main() {
    int x;
    x = g;
    {
        int x;
        x = 2;
    }
    return x;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	main := prog.FuncByName["main"]
	outer := main.Body.Stmts[1].(*AssignStmt)
	if outer.Lhs.(*Ident).Obj.ID != "main::x#0" {
		t.Errorf("outer x resolves to %s", outer.Lhs.(*Ident).Obj.ID)
	}
	if outer.Rhs.(*Ident).Obj.ID != "g" || !outer.Rhs.(*Ident).Obj.Global {
		t.Errorf("g resolves to %s", outer.Rhs.(*Ident).Obj.ID)
	}
	inner := main.Body.Stmts[2].(*BlockStmt).Stmts[1].(*AssignStmt)
	if inner.Lhs.(*Ident).Obj.ID != "main::x#1" {
		t.Errorf("inner x resolves to %s (shadowing broken)", inner.Lhs.(*Ident).Obj.ID)
	}
	ret := main.Body.Stmts[3].(*ReturnStmt)
	if ret.Value.(*Ident).Obj.ID != "main::x#0" {
		t.Errorf("return x resolves to %s", ret.Value.(*Ident).Obj.ID)
	}
}

func TestSemaTypes(t *testing.T) {
	prog, err := Parse(`
int main() {
    int i;
    int *p;
    int a[4];
    p = &i;
    i = *p + a[1];
    p = a;
    return i;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	main := prog.FuncByName["main"]
	assignI := main.Body.Stmts[4].(*AssignStmt)
	if assignI.Rhs.Type().Kind != TypeInt {
		t.Errorf("*p + a[1] has type %s", assignI.Rhs.Type())
	}
	// &i marks i address-taken.
	var iDecl *VarDecl
	for _, l := range main.Locals {
		if l.Name == "i" {
			iDecl = l
		}
	}
	if iDecl == nil || !iDecl.AddrTaken {
		t.Error("i should be marked address-taken")
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`int main() { return x; }`, "undefined variable"},
		{`int main() { y(); return 0; }`, "undefined function"},
		{`int f(int a) { return a; } int main() { f(); return 0; }`, "expects 1 arguments"},
		{`int f(int *p) { return 0; } int main() { f(3); return 0; }`, "cannot pass"},
		{`int main() { int x; int x; return 0; }`, "redeclaration"},
		{`int g; int g; int main() { return 0; }`, "duplicate global"},
		{`void f() { return 3; }  int main() { return 0; }`, "void function"},
		{`int main() { return; }`, "must return"},
		{`int main() { int *p; p = 3; return 0; }`, "cannot assign"},
		{`int main() { int i; i = *i; return 0; }`, "cannot dereference"},
		{`int main() { int a[3]; a = 0; return 0; }`, "cannot assign to array"},
		{`int main() { int i; i = &3; return 0; }`, "address of a variable"},
		{`int main() { int *p; int i; i = p + 1; return 0; }`, "must be int"},
		{`int main() { int *p; int i; i = p == 1; return 0; }`, "same type"},
		{`int f() { return 0; } int main() { int i; i = f; return 0; }`, "undefined variable"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail with %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestSemaPointerComparison(t *testing.T) {
	_, err := Parse(`
int main() {
    int i; int j; int *p; int *q;
    p = &i; q = &j;
    if (p == q) { i = 1; }
    if (p != q) { j = 1; }
    return 0;
}
`)
	if err != nil {
		t.Fatalf("pointer equality should be allowed: %v", err)
	}
}

func TestTypeString(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{IntType, "int"},
		{VoidType, "void"},
		{PtrTo(IntType), "int*"},
		{PtrTo(PtrTo(IntType)), "int**"},
		{ArrayOf(IntType, 8), "int[8]"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !PtrTo(IntType).Equal(PtrTo(IntType)) {
		t.Error("int* should equal int*")
	}
	if PtrTo(IntType).Equal(IntType) {
		t.Error("int* should not equal int")
	}
	if ArrayOf(IntType, 3).Equal(ArrayOf(IntType, 4)) {
		t.Error("arrays of different length should differ")
	}
}
