package cint

import "strconv"

// Lexer turns mini-C source text into tokens. It supports // line comments
// and /* block */ comments.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input, returning the token stream terminated by
// an EOF token, or the first lexical error.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) bump() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.bump()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.bump()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.bump()
			lx.bump()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.bump()
					lx.bump()
					closed = true
					break
				}
				lx.bump()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isLetter(c):
		start := lx.off
		for lx.off < len(lx.src) && (isLetter(lx.peek()) || isDigit(lx.peek())) {
			lx.bump()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := lx.off
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.bump()
		}
		text := lx.src[start:lx.off]
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, errf(pos, "integer literal %q out of range", text)
		}
		return Token{Kind: TokInt, Text: text, Val: v, Pos: pos}, nil
	}
	one := func(k TokKind) (Token, error) {
		lx.bump()
		return Token{Kind: k, Text: string(c), Pos: pos}, nil
	}
	two := func(k TokKind, text string) (Token, error) {
		lx.bump()
		lx.bump()
		return Token{Kind: k, Text: text, Pos: pos}, nil
	}
	switch c {
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case ';':
		return one(TokSemi)
	case ',':
		return one(TokComma)
	case '+':
		return one(TokPlus)
	case '-':
		return one(TokMinus)
	case '*':
		return one(TokStar)
	case '/':
		return one(TokSlash)
	case '%':
		return one(TokPercent)
	case '=':
		if lx.peek2() == '=' {
			return two(TokEq, "==")
		}
		return one(TokAssign)
	case '!':
		if lx.peek2() == '=' {
			return two(TokNe, "!=")
		}
		return one(TokNot)
	case '<':
		if lx.peek2() == '=' {
			return two(TokLe, "<=")
		}
		return one(TokLt)
	case '>':
		if lx.peek2() == '=' {
			return two(TokGe, ">=")
		}
		return one(TokGt)
	case '&':
		if lx.peek2() == '&' {
			return two(TokAndAnd, "&&")
		}
		return one(TokAmp)
	case '|':
		if lx.peek2() == '|' {
			return two(TokOrOr, "||")
		}
		return Token{}, errf(pos, "unexpected character %q (bitwise-or is not supported)", string(c))
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}
