package cint

import (
	"fmt"
	"strings"
)

// TypeKind enumerates mini-C type constructors.
type TypeKind int

// Type kinds.
const (
	TypeInt TypeKind = iota
	TypePtr
	TypeArray
	TypeVoid
)

// Type is a mini-C type: int, pointer, fixed-size array of int, or void
// (function results only).
type Type struct {
	Kind TypeKind
	Elem *Type // pointee (TypePtr) or element (TypeArray)
	Len  int64 // array length (TypeArray)
}

// Predefined types.
var (
	IntType  = &Type{Kind: TypeInt}
	VoidType = &Type{Kind: TypeVoid}
)

// PtrTo returns the pointer type to elem.
func PtrTo(elem *Type) *Type { return &Type{Kind: TypePtr, Elem: elem} }

// ArrayOf returns the array type of n elems.
func ArrayOf(elem *Type, n int64) *Type { return &Type{Kind: TypeArray, Elem: elem, Len: n} }

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TypePtr:
		return t.Elem.Equal(o.Elem)
	case TypeArray:
		return t.Len == o.Len && t.Elem.Equal(o.Elem)
	default:
		return true
	}
}

// String renders the type in C-ish syntax.
func (t *Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeVoid:
		return "void"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	default:
		return "?"
	}
}

// VarDecl declares a variable: a global, a function parameter, or a local.
type VarDecl struct {
	Name string
	Type *Type
	Init Expr // optional initializer
	Pos  Pos

	// Filled by semantic analysis.
	Global bool
	Fn     *FuncDecl // owning function (nil for globals)
	ID     string    // unique identifier, e.g. "g" or "main::i"
	// AddrTaken reports whether &v occurs anywhere; only such variables
	// (and arrays) can be pointer targets.
	AddrTaken bool
}

// String returns the unique ID.
func (v *VarDecl) String() string { return v.ID }

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*VarDecl
	Body   *BlockStmt
	Pos    Pos

	// Filled by semantic analysis: all locals including parameters.
	Locals []*VarDecl
}

// Program is a parsed-and-checked translation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl

	FuncByName map[string]*FuncDecl
}

// Expr is a mini-C expression.
type Expr interface {
	exprNode()
	// Position returns the source position of the expression.
	Position() Pos
	// Type returns the checked type (after sema).
	Type() *Type
	// String renders the expression.
	String() string
}

type exprBase struct {
	pos Pos
	typ *Type
}

func (e *exprBase) exprNode()     {}
func (e *exprBase) Position() Pos { return e.pos }

// Type returns the checked type of the expression (nil before sema).
func (e *exprBase) Type() *Type { return e.typ }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

func (e *IntLit) String() string { return fmt.Sprintf("%d", e.Value) }

// Ident names a variable.
type Ident struct {
	exprBase
	Name string
	Obj  *VarDecl // resolved by sema
}

func (e *Ident) String() string { return e.Name }

// UnaryExpr is -x, !x, *p or &v.
type UnaryExpr struct {
	exprBase
	Op TokKind
	X  Expr
}

func (e *UnaryExpr) String() string {
	op := map[TokKind]string{TokMinus: "-", TokNot: "!", TokStar: "*", TokAmp: "&"}[e.Op]
	return op + e.X.String()
}

// BinaryExpr is x op y for arithmetic, comparison and logical operators.
type BinaryExpr struct {
	exprBase
	Op   TokKind
	X, Y Expr
}

func (e *BinaryExpr) String() string {
	op := map[TokKind]string{
		TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
		TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=", TokEq: "==", TokNe: "!=",
		TokAndAnd: "&&", TokOrOr: "||",
	}[e.Op]
	return fmt.Sprintf("(%s %s %s)", e.X, op, e.Y)
}

// IndexExpr is a[i].
type IndexExpr struct {
	exprBase
	X   Expr
	Idx Expr
}

func (e *IndexExpr) String() string { return fmt.Sprintf("%s[%s]", e.X, e.Idx) }

// CallExpr is f(args). Calls are statement-level only (see package doc).
type CallExpr struct {
	exprBase
	Name string
	Args []Expr
	Fn   *FuncDecl // resolved by sema
}

func (e *CallExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(parts, ", "))
}

// Stmt is a mini-C statement.
type Stmt interface {
	stmtNode()
	// Position returns the source position of the statement.
	Position() Pos
}

type stmtBase struct{ pos Pos }

func (s *stmtBase) stmtNode()     {}
func (s *stmtBase) Position() Pos { return s.pos }

// BlockStmt is { stmts }.
type BlockStmt struct {
	stmtBase
	Stmts []Stmt
}

// DeclStmt declares a local variable, optionally with an initializer.
type DeclStmt struct {
	stmtBase
	Decl *VarDecl
}

// AssignStmt is lhs = rhs; where lhs is an identifier, *p, or a[i]. If Call
// is non-nil the statement is lhs = f(args); and Rhs is nil.
type AssignStmt struct {
	stmtBase
	Lhs  Expr
	Rhs  Expr
	Call *CallExpr
}

// ExprStmt is a call statement f(args);.
type ExprStmt struct {
	stmtBase
	Call *CallExpr
}

// IfStmt is if (cond) then else else.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is while (cond) body.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// DoWhileStmt is do body while (cond);.
type DoWhileStmt struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// ForStmt is for (init; cond; post) body. Init and Post are optional simple
// statements (assignment or declaration); Cond is optional.
type ForStmt struct {
	stmtBase
	Init Stmt // nil, *DeclStmt, *AssignStmt or *ExprStmt
	Cond Expr // nil means true
	Post Stmt // nil, *AssignStmt or *ExprStmt
	Body Stmt
}

// ReturnStmt is return e; or return;.
type ReturnStmt struct {
	stmtBase
	Value Expr // nil for bare return
}

// BreakStmt is break;.
type BreakStmt struct{ stmtBase }

// ContinueStmt is continue;.
type ContinueStmt struct{ stmtBase }

// AssertStmt is assert(cond); — execution aborts if cond is false. The
// analyzer classifies each assertion as proved, failed, or unknown.
type AssertStmt struct {
	stmtBase
	Cond Expr
}

// EmptyStmt is ;.
type EmptyStmt struct{ stmtBase }
