package lattice

import "fmt"

// Nat is an element of the lattice ℕ ∪ {∞} used in the paper's Examples 1–4:
// non-negative integers under their natural order, extended with a greatest
// element ∞.
type Nat struct {
	inf bool
	v   uint64
}

// NatOf returns the finite element v.
func NatOf(v uint64) Nat { return Nat{v: v} }

// NatInfElem is the greatest element ∞.
var NatInfElem = Nat{inf: true}

// IsInf reports whether n is ∞.
func (n Nat) IsInf() bool { return n.inf }

// Val returns the finite value; it panics on ∞.
func (n Nat) Val() uint64 {
	if n.inf {
		panic("lattice: Val on ∞")
	}
	return n.v
}

// String renders n.
func (n Nat) String() string {
	if n.inf {
		return "∞"
	}
	return fmt.Sprintf("%d", n.v)
}

// NatInfLattice is the lattice D = ℕ ∪ {∞} of the paper's Examples 1–4,
// with the widening a ∇ b = a if b ≤ a and ∞ otherwise, and the narrowing
// (for b ≤ a) a Δ b = b if a = ∞ and a otherwise.
type NatInfLattice struct{}

// NatInf is the lattice instance.
var NatInf = NatInfLattice{}

// Bottom returns 0.
func (NatInfLattice) Bottom() Nat { return Nat{} }

// Top returns ∞.
func (NatInfLattice) Top() Nat { return NatInfElem }

// Leq reports the natural order extended with ∞ on top.
func (NatInfLattice) Leq(a, b Nat) bool {
	if b.inf {
		return true
	}
	if a.inf {
		return false
	}
	return a.v <= b.v
}

// Eq reports equality.
func (NatInfLattice) Eq(a, b Nat) bool { return a == b }

// Join returns the maximum.
func (l NatInfLattice) Join(a, b Nat) Nat {
	if l.Leq(a, b) {
		return b
	}
	return a
}

// Meet returns the minimum.
func (l NatInfLattice) Meet(a, b Nat) Nat {
	if l.Leq(a, b) {
		return a
	}
	return b
}

// Widen returns a if b ≤ a, and ∞ otherwise — exactly the operator of
// Example 1.
func (l NatInfLattice) Widen(a, b Nat) Nat {
	if l.Leq(b, a) {
		return a
	}
	return NatInfElem
}

// Narrow, for b ≤ a, returns b if a = ∞ and a otherwise — exactly the
// operator of Example 1.
func (NatInfLattice) Narrow(a, b Nat) Nat {
	if a.inf {
		return b
	}
	return a
}

// Format renders an element.
func (NatInfLattice) Format(a Nat) string { return a.String() }
