package lattice

import "testing"

func TestNatInfLaws(t *testing.T) {
	samples := []Nat{NatOf(0), NatOf(1), NatOf(2), NatOf(7), NatOf(100), NatInfElem}
	if err := CheckLaws[Nat](NatInf, samples); err != nil {
		t.Fatal(err)
	}
}

func TestNatInfOperators(t *testing.T) {
	// The exact operators of paper Example 1.
	if got := NatInf.Widen(NatOf(3), NatOf(3)); got != NatOf(3) {
		t.Errorf("3 ∇ 3 = %s, want 3", got)
	}
	if got := NatInf.Widen(NatOf(3), NatOf(2)); got != NatOf(3) {
		t.Errorf("3 ∇ 2 = %s, want 3", got)
	}
	if got := NatInf.Widen(NatOf(3), NatOf(4)); got != NatInfElem {
		t.Errorf("3 ∇ 4 = %s, want ∞", got)
	}
	if got := NatInf.Narrow(NatInfElem, NatOf(5)); got != NatOf(5) {
		t.Errorf("∞ Δ 5 = %s, want 5", got)
	}
	if got := NatInf.Narrow(NatOf(7), NatOf(5)); got != NatOf(7) {
		t.Errorf("7 Δ 5 = %s, want 7", got)
	}
}

func TestNatInfBasics(t *testing.T) {
	if NatInf.Bottom() != NatOf(0) || NatInf.Top() != NatInfElem {
		t.Fatal("extremal elements")
	}
	if NatOf(3).String() != "3" || NatInfElem.String() != "∞" {
		t.Fatal("String")
	}
	if !NatInfElem.IsInf() || NatOf(1).IsInf() {
		t.Fatal("IsInf")
	}
	if NatOf(9).Val() != 9 {
		t.Fatal("Val")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Val on ∞ should panic")
		}
	}()
	_ = NatInfElem.Val()
}

func TestNatInfWideningStabilizes(t *testing.T) {
	// f(x) = x + 1 (monotone, unbounded): widening must stabilize at ∞.
	f := func(x Nat) Nat {
		if x.IsInf() {
			return x
		}
		return NatOf(x.Val() + 1)
	}
	if err := CheckWideningStabilizes[Nat](NatInf, f, 5); err != nil {
		t.Error(err)
	}
}
