package lattice

// Parity is an element of the parity (congruence mod 2) lattice:
// ⊥ < {Even, Odd} < ⊤. A classic finite-height domain, used in tests and
// as the second component of reduced products with intervals.
type Parity uint8

// Parity elements are bitsets over {even, odd}.
const (
	ParityBot  Parity = 0
	ParityEven Parity = 1
	ParityOdd  Parity = 2
	ParityTop  Parity = 3
)

// ParityOf abstracts a concrete integer.
func ParityOf(v int64) Parity {
	if v%2 == 0 {
		return ParityEven
	}
	return ParityOdd
}

// Contains reports whether v is described by p.
func (p Parity) Contains(v int64) bool { return ParityOf(v)&p != 0 }

// String renders the parity.
func (p Parity) String() string {
	switch p {
	case ParityBot:
		return "⊥"
	case ParityEven:
		return "even"
	case ParityOdd:
		return "odd"
	default:
		return "⊤"
	}
}

// ParityLattice is the parity lattice.
type ParityLattice struct{}

// Parities is the lattice instance.
var Parities = ParityLattice{}

// Bottom returns ⊥.
func (ParityLattice) Bottom() Parity { return ParityBot }

// Top returns ⊤.
func (ParityLattice) Top() Parity { return ParityTop }

// Leq is bitset inclusion.
func (ParityLattice) Leq(a, b Parity) bool { return a&^b == 0 }

// Eq is equality.
func (ParityLattice) Eq(a, b Parity) bool { return a == b }

// Join is union.
func (ParityLattice) Join(a, b Parity) Parity { return a | b }

// Meet is intersection.
func (ParityLattice) Meet(a, b Parity) Parity { return a & b }

// Widen joins (finite height).
func (ParityLattice) Widen(a, b Parity) Parity { return a | b }

// Narrow returns b.
func (ParityLattice) Narrow(a, b Parity) Parity { return b }

// Format renders an element.
func (ParityLattice) Format(a Parity) string { return a.String() }

// Add is the abstract sum.
func (p Parity) Add(o Parity) Parity {
	if p == ParityBot || o == ParityBot {
		return ParityBot
	}
	var out Parity
	if p&ParityEven != 0 && o&ParityEven != 0 {
		out |= ParityEven
	}
	if p&ParityOdd != 0 && o&ParityOdd != 0 {
		out |= ParityEven
	}
	if p&ParityEven != 0 && o&ParityOdd != 0 {
		out |= ParityOdd
	}
	if p&ParityOdd != 0 && o&ParityEven != 0 {
		out |= ParityOdd
	}
	return out
}

// Mul is the abstract product.
func (p Parity) Mul(o Parity) Parity {
	if p == ParityBot || o == ParityBot {
		return ParityBot
	}
	var out Parity
	if p&ParityEven != 0 || o&ParityEven != 0 {
		out |= ParityEven
	}
	if p&ParityOdd != 0 && o&ParityOdd != 0 {
		out |= ParityOdd
	}
	return out
}

// ReduceIntervalParity is the reduction operator of the reduced product
// interval × parity: it tightens finite interval bounds to the nearest
// value of the right parity, and refines parity from singleton intervals.
// The classic example: ([0,7], even) reduces to ([0,6], even).
func ReduceIntervalParity(iv Interval, p Parity) (Interval, Parity) {
	if iv.IsEmpty() || p == ParityBot {
		return EmptyInterval, ParityBot
	}
	if p == ParityEven || p == ParityOdd {
		want := int64(0)
		if p == ParityOdd {
			want = 1
		}
		lo, hi := iv.Lo, iv.Hi
		if lo.IsFinite() && mod2(lo.Int()) != want {
			lo = Fin(lo.Int() + 1)
		}
		if hi.IsFinite() && mod2(hi.Int()) != want {
			hi = Fin(hi.Int() - 1)
		}
		iv = NewInterval(lo, hi)
		if iv.IsEmpty() {
			return EmptyInterval, ParityBot
		}
	}
	if c, ok := iv.IsConst(); ok {
		p = p & ParityOf(c)
		if p == ParityBot {
			return EmptyInterval, ParityBot
		}
	}
	return iv, p
}

// mod2 is the non-negative remainder mod 2.
func mod2(v int64) int64 {
	m := v % 2
	if m < 0 {
		m += 2
	}
	return m
}
