package lattice

import "testing"

func TestFlatLaws(t *testing.T) {
	l := FlatLattice[int]{}
	samples := []Flat[int]{
		l.Bottom(), l.Top(), FlatOf(0), FlatOf(1), FlatOf(-5), FlatOf(42),
	}
	if err := CheckLaws[Flat[int]](l, samples); err != nil {
		t.Fatal(err)
	}
}

func TestFlatJoinMeet(t *testing.T) {
	l := FlatLattice[string]{}
	a, b := FlatOf("x"), FlatOf("y")
	if got := l.Join(a, b); got.Kind != FlatTop {
		t.Errorf("join of distinct values should be ⊤, got %s", l.Format(got))
	}
	if got := l.Join(a, a); !l.Eq(got, a) {
		t.Errorf("join of equal values should be idempotent, got %s", l.Format(got))
	}
	if got := l.Meet(a, b); got.Kind != FlatBot {
		t.Errorf("meet of distinct values should be ⊥, got %s", l.Format(got))
	}
	if got := l.Meet(l.Top(), a); !l.Eq(got, a) {
		t.Errorf("⊤ meet a = %s", l.Format(got))
	}
}

func TestFlatFormat(t *testing.T) {
	l := FlatLattice[int]{}
	if l.Format(l.Bottom()) != "⊥" || l.Format(l.Top()) != "⊤" || l.Format(FlatOf(3)) != "3" {
		t.Fatal("Format")
	}
}
