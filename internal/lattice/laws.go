package lattice

import "fmt"

// CheckLaws verifies the lattice and widening/narrowing laws on the given
// sample elements, returning the first violation found. It is intended for
// tests (including property-based tests that feed generated samples), but
// lives in the package so examples and tools can sanity-check custom
// lattices too.
func CheckLaws[D any](l Lattice[D], samples []D) error {
	for _, a := range samples {
		if !l.Leq(l.Bottom(), a) {
			return fmt.Errorf("bottom not ⊑ %s", l.Format(a))
		}
		if !l.Leq(a, a) {
			return fmt.Errorf("Leq not reflexive on %s", l.Format(a))
		}
		if !l.Eq(a, a) {
			return fmt.Errorf("Eq not reflexive on %s", l.Format(a))
		}
		if !l.Eq(l.Join(a, a), a) {
			return fmt.Errorf("Join not idempotent on %s", l.Format(a))
		}
		if !l.Eq(l.Meet(a, a), a) {
			return fmt.Errorf("Meet not idempotent on %s", l.Format(a))
		}
	}
	for _, a := range samples {
		for _, b := range samples {
			j := l.Join(a, b)
			if !l.Leq(a, j) || !l.Leq(b, j) {
				return fmt.Errorf("Join(%s, %s) = %s is not an upper bound",
					l.Format(a), l.Format(b), l.Format(j))
			}
			m := l.Meet(a, b)
			if !l.Leq(m, a) || !l.Leq(m, b) {
				return fmt.Errorf("Meet(%s, %s) = %s is not a lower bound",
					l.Format(a), l.Format(b), l.Format(m))
			}
			if !l.Eq(j, l.Join(b, a)) {
				return fmt.Errorf("Join not commutative on %s, %s", l.Format(a), l.Format(b))
			}
			if !l.Eq(m, l.Meet(b, a)) {
				return fmt.Errorf("Meet not commutative on %s, %s", l.Format(a), l.Format(b))
			}
			if l.Leq(a, b) != (l.Eq(l.Join(a, b), b)) {
				return fmt.Errorf("Leq(%s, %s) inconsistent with Join", l.Format(a), l.Format(b))
			}
			if l.Eq(a, b) != (l.Leq(a, b) && l.Leq(b, a)) {
				return fmt.Errorf("Eq(%s, %s) inconsistent with Leq", l.Format(a), l.Format(b))
			}
			w := l.Widen(a, b)
			if !l.Leq(a, w) || !l.Leq(b, w) {
				return fmt.Errorf("Widen(%s, %s) = %s is not an upper bound",
					l.Format(a), l.Format(b), l.Format(w))
			}
			if l.Leq(b, a) {
				n := l.Narrow(a, b)
				if !l.Leq(b, n) || !l.Leq(n, a) {
					return fmt.Errorf("Narrow(%s, %s) = %s not between arguments",
						l.Format(a), l.Format(b), l.Format(n))
				}
			}
		}
	}
	// Least-upper-bound property against the sample set: Join(a,b) must be
	// ⊑ every sampled upper bound of a and b (and dually for Meet).
	for _, a := range samples {
		for _, b := range samples {
			j := l.Join(a, b)
			m := l.Meet(a, b)
			for _, c := range samples {
				if l.Leq(a, c) && l.Leq(b, c) && !l.Leq(j, c) {
					return fmt.Errorf("Join(%s, %s) not least: %s is a smaller upper bound",
						l.Format(a), l.Format(b), l.Format(c))
				}
				if l.Leq(c, a) && l.Leq(c, b) && !l.Leq(c, m) {
					return fmt.Errorf("Meet(%s, %s) not greatest: %s is a larger lower bound",
						l.Format(a), l.Format(b), l.Format(c))
				}
			}
		}
	}
	return nil
}

// CheckWideningStabilizes iterates a_{k+1} = Widen(a_k, f(a_k)) from bottom
// and reports an error if the chain fails to stabilize within maxSteps. It
// exercises the termination property that the ⊟-based solvers rely on.
func CheckWideningStabilizes[D any](l Lattice[D], f func(D) D, maxSteps int) error {
	a := l.Bottom()
	for k := 0; k < maxSteps; k++ {
		next := l.Widen(a, f(a))
		if l.Eq(next, a) {
			return nil
		}
		a = next
	}
	return fmt.Errorf("widening chain did not stabilize within %d steps (at %s)", maxSteps, l.Format(a))
}

// CheckNarrowingStabilizes iterates a_{k+1} = Narrow(a_k, f(a_k)) from the
// given post-fixpoint of monotone f and reports an error if the chain fails
// to stabilize within maxSteps.
func CheckNarrowingStabilizes[D any](l Lattice[D], f func(D) D, start D, maxSteps int) error {
	a := start
	for k := 0; k < maxSteps; k++ {
		fa := f(a)
		if !l.Leq(fa, a) {
			return fmt.Errorf("start is not a post-fixpoint at step %d: f(%s) = %s",
				k, l.Format(a), l.Format(fa))
		}
		next := l.Narrow(a, fa)
		if l.Eq(next, a) {
			return nil
		}
		a = next
	}
	return fmt.Errorf("narrowing chain did not stabilize within %d steps (at %s)", maxSteps, l.Format(a))
}

// CheckRawAgreement certifies a raw word encoding against its boxed
// lattice on the given sample elements: encode/decode must round-trip,
// bottom must encode canonically, and every raw operation must agree with
// its boxed counterpart — not just up to Eq, but word for word, since the
// encodings are canonical and the unboxed solver core relies on RawEq
// being plain word equality. All ternary operations are additionally run
// with dst aliasing each input, pinning the in-place-update contract.
func CheckRawAgreement[D any](l Lattice[D], r Raw[D], samples []D) error {
	n := r.RawWords()
	if n <= 0 {
		return fmt.Errorf("RawWords() = %d, want > 0", n)
	}
	enc := func(d D) []uint64 {
		w := make([]uint64, n)
		r.RawEncode(w, d)
		return w
	}
	wordsEq := func(a, b []uint64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	bot := make([]uint64, n)
	r.RawBottom(bot)
	if !wordsEq(bot, enc(l.Bottom())) {
		return fmt.Errorf("RawBottom %v differs from RawEncode(Bottom) %v", bot, enc(l.Bottom()))
	}
	for _, a := range samples {
		wa := enc(a)
		if got := r.RawDecode(wa); !l.Eq(got, a) {
			return fmt.Errorf("decode(encode(%s)) = %s", l.Format(a), l.Format(got))
		}
	}
	type ternary struct {
		name  string
		raw   func(dst, a, b []uint64)
		boxed func(a, b D) D
	}
	ops := []ternary{
		{"Join", r.RawJoin, l.Join},
		{"Meet", r.RawMeet, l.Meet},
		{"Widen", r.RawWiden, l.Widen},
		{"Narrow", r.RawNarrow, l.Narrow},
	}
	for _, a := range samples {
		for _, b := range samples {
			wa, wb := enc(a), enc(b)
			if got, want := r.RawLeq(wa, wb), l.Leq(a, b); got != want {
				return fmt.Errorf("RawLeq(%s, %s) = %t, boxed %t", l.Format(a), l.Format(b), got, want)
			}
			if got, want := r.RawEq(wa, wb), l.Eq(a, b); got != want {
				return fmt.Errorf("RawEq(%s, %s) = %t, boxed %t", l.Format(a), l.Format(b), got, want)
			}
			for _, op := range ops {
				want := enc(op.boxed(a, b))
				dst := make([]uint64, n)
				op.raw(dst, wa, wb)
				if !wordsEq(dst, want) {
					return fmt.Errorf("Raw%s(%s, %s) = %v, boxed encodes to %v",
						op.name, l.Format(a), l.Format(b), dst, want)
				}
				// dst aliasing a, then dst aliasing b.
				da := append([]uint64(nil), wa...)
				op.raw(da, da, wb)
				if !wordsEq(da, want) {
					return fmt.Errorf("Raw%s(%s, %s) with dst aliasing a = %v, want %v",
						op.name, l.Format(a), l.Format(b), da, want)
				}
				db := append([]uint64(nil), wb...)
				op.raw(db, wa, db)
				if !wordsEq(db, want) {
					return fmt.Errorf("Raw%s(%s, %s) with dst aliasing b = %v, want %v",
						op.name, l.Format(a), l.Format(b), db, want)
				}
			}
		}
	}
	return nil
}
