package lattice

import (
	"testing"
	"testing/quick"
)

func TestSetLaws(t *testing.T) {
	l := NewSetLattice("a", "b", "c")
	samples := []Set[string]{
		NewSet[string](), NewSet("a"), NewSet("b"), NewSet("a", "b"),
		NewSet("a", "b", "c"), NewSet("c"),
	}
	if err := CheckLaws[Set[string]](l, samples); err != nil {
		t.Fatal(err)
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet(1, 2, 3)
	b := NewSet(3, 4)
	if u := a.Union(b); u.Len() != 4 || !u.Has(4) || !u.Has(1) {
		t.Errorf("union: %v", u.Elems())
	}
	if i := a.Intersect(b); i.Len() != 1 || !i.Has(3) {
		t.Errorf("intersect: %v", i.Elems())
	}
	if !NewSet(1).Subset(a) || a.Subset(b) {
		t.Error("subset")
	}
	if NewSet[int]().Len() != 0 {
		t.Error("empty set")
	}
}

func TestSetKeyDeterministic(t *testing.T) {
	a := NewSet("x", "y", "z")
	b := NewSet("z", "y", "x")
	if a.Key() != b.Key() {
		t.Errorf("Key not order-independent: %s vs %s", a.Key(), b.Key())
	}
	if a.Key() != "{x,y,z}" {
		t.Errorf("Key = %s", a.Key())
	}
}

func TestSetTopPanicsWithoutUniverse(t *testing.T) {
	var l *SetLattice[int]
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Top()
}

// Property: union is commutative, associative, and absorbs subsets.
func TestSetUnionProperties(t *testing.T) {
	mk := func(xs []uint8) Set[uint8] { return NewSet(xs...) }
	f := func(xs, ys, zs []uint8) bool {
		a, b, c := mk(xs), mk(ys), mk(zs)
		l := &SetLattice[uint8]{}
		if !l.Eq(a.Union(b), b.Union(a)) {
			return false
		}
		if !l.Eq(a.Union(b).Union(c), a.Union(b.Union(c))) {
			return false
		}
		return a.Subset(a.Union(b)) && l.Eq(a.Union(a), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
