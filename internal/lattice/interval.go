package lattice

import (
	"fmt"
	"sort"
)

// Interval is an element of the integer interval lattice: either the empty
// interval (bottom) or the set of integers between Lo and Hi inclusive,
// where the bounds may be infinite. The zero value is the empty interval.
type Interval struct {
	// Lo and Hi are the bounds; a non-empty interval satisfies Lo ≤ Hi.
	Lo, Hi Ext
	// nonEmpty distinguishes the empty interval from [0,0] so that the
	// zero value of Interval is bottom.
	nonEmpty bool
}

// EmptyInterval is the bottom element of the interval lattice.
var EmptyInterval = Interval{}

// FullInterval is the top element [-∞, +∞].
var FullInterval = Interval{Lo: NegInf, Hi: PosInf, nonEmpty: true}

// NewInterval returns the interval [lo, hi], or the empty interval if
// lo > hi.
func NewInterval(lo, hi Ext) Interval {
	if lo.Cmp(hi) > 0 {
		return EmptyInterval
	}
	return Interval{Lo: lo, Hi: hi, nonEmpty: true}
}

// Singleton returns the interval [v, v].
func Singleton(v int64) Interval { return NewInterval(Fin(v), Fin(v)) }

// Range returns the interval [lo, hi] for finite bounds.
func Range(lo, hi int64) Interval { return NewInterval(Fin(lo), Fin(hi)) }

// AtLeast returns [lo, +∞].
func AtLeast(lo int64) Interval { return NewInterval(Fin(lo), PosInf) }

// AtMost returns [-∞, hi].
func AtMost(hi int64) Interval { return NewInterval(NegInf, Fin(hi)) }

// IsEmpty reports whether i is the empty interval.
func (i Interval) IsEmpty() bool { return !i.nonEmpty }

// IsConst reports whether i is a singleton [v, v] and returns v.
func (i Interval) IsConst() (int64, bool) {
	if i.nonEmpty && i.Lo.IsFinite() && i.Lo.Cmp(i.Hi) == 0 {
		return i.Lo.Int(), true
	}
	return 0, false
}

// Contains reports whether the integer v lies in i.
func (i Interval) Contains(v int64) bool {
	return i.nonEmpty && i.Lo.Leq(Fin(v)) && Fin(v).Leq(i.Hi)
}

// String renders the interval.
func (i Interval) String() string {
	if i.IsEmpty() {
		return "⊥"
	}
	return fmt.Sprintf("[%s,%s]", i.Lo, i.Hi)
}

// IntervalLattice is the complete lattice of integer intervals. Thresholds,
// if set, refine widening: an unstable bound is widened to the nearest
// enclosing threshold before jumping to infinity (Sec. 1 of the paper cites
// such refined operators as complementary; we include them for ablations).
type IntervalLattice struct {
	thresholds []int64 // sorted ascending
}

// Ints is the interval lattice with plain widening (no thresholds).
var Ints = &IntervalLattice{}

// NewIntervalLattice returns an interval lattice whose widening respects
// the given thresholds.
func NewIntervalLattice(thresholds ...int64) *IntervalLattice {
	ts := append([]int64(nil), thresholds...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	// Deduplicate.
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != ts[i-1] {
			out = append(out, t)
		}
	}
	return &IntervalLattice{thresholds: out}
}

// Bottom returns the empty interval.
func (*IntervalLattice) Bottom() Interval { return EmptyInterval }

// Top returns [-∞, +∞].
func (*IntervalLattice) Top() Interval { return FullInterval }

// Leq reports interval inclusion.
func (*IntervalLattice) Leq(a, b Interval) bool {
	if a.IsEmpty() {
		return true
	}
	if b.IsEmpty() {
		return false
	}
	return b.Lo.Leq(a.Lo) && a.Hi.Leq(b.Hi)
}

// Eq reports interval equality.
func (*IntervalLattice) Eq(a, b Interval) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return a.IsEmpty() == b.IsEmpty()
	}
	return a.Lo.Cmp(b.Lo) == 0 && a.Hi.Cmp(b.Hi) == 0
}

// Join returns the smallest interval containing both a and b.
func (*IntervalLattice) Join(a, b Interval) Interval {
	if a.IsEmpty() {
		return b
	}
	if b.IsEmpty() {
		return a
	}
	return NewInterval(MinExt(a.Lo, b.Lo), MaxExt(a.Hi, b.Hi))
}

// Meet returns the intersection of a and b.
func (*IntervalLattice) Meet(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return EmptyInterval
	}
	return NewInterval(MaxExt(a.Lo, b.Lo), MinExt(a.Hi, b.Hi))
}

// widenLo returns the widened lower bound when b's is below a's.
func (l *IntervalLattice) widenLo(b Ext) Ext {
	// Largest threshold ≤ b, else -∞.
	if b.IsFinite() {
		for i := len(l.thresholds) - 1; i >= 0; i-- {
			if Fin(l.thresholds[i]).Leq(b) {
				return Fin(l.thresholds[i])
			}
		}
	}
	return NegInf
}

// widenHi returns the widened upper bound when b's is above a's.
func (l *IntervalLattice) widenHi(b Ext) Ext {
	// Smallest threshold ≥ b, else +∞.
	if b.IsFinite() {
		for _, t := range l.thresholds {
			if b.Leq(Fin(t)) {
				return Fin(t)
			}
		}
	}
	return PosInf
}

// Widen implements standard interval widening: bounds that are unstable in
// the join jump to the nearest threshold or to infinity.
func (l *IntervalLattice) Widen(a, b Interval) Interval {
	if a.IsEmpty() {
		return b
	}
	if b.IsEmpty() {
		return a
	}
	lo := a.Lo
	if b.Lo.Less(a.Lo) {
		lo = l.widenLo(b.Lo)
	}
	hi := a.Hi
	if a.Hi.Less(b.Hi) {
		hi = l.widenHi(b.Hi)
	}
	return NewInterval(lo, hi)
}

// Narrow implements standard interval narrowing: only infinite bounds of a
// are improved to the corresponding bound of b. It requires b ⊑ a.
func (*IntervalLattice) Narrow(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return b
	}
	lo := a.Lo
	if lo.IsNegInf() {
		lo = b.Lo
	}
	hi := a.Hi
	if hi.IsPosInf() {
		hi = b.Hi
	}
	return NewInterval(lo, hi)
}

// Format renders an interval.
func (*IntervalLattice) Format(a Interval) string { return a.String() }

// Interval arithmetic, used by the abstract interpreter in internal/analysis.

// Add returns the abstract sum of a and b.
func (i Interval) Add(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return EmptyInterval
	}
	return NewInterval(i.Lo.Add(o.Lo), i.Hi.Add(o.Hi))
}

// Sub returns the abstract difference of a and b.
func (i Interval) Sub(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return EmptyInterval
	}
	return NewInterval(i.Lo.Sub(o.Hi), i.Hi.Sub(o.Lo))
}

// Neg returns the abstract negation of i.
func (i Interval) Neg() Interval {
	if i.IsEmpty() {
		return EmptyInterval
	}
	return NewInterval(i.Hi.Neg(), i.Lo.Neg())
}

// Mul returns the abstract product of a and b.
func (i Interval) Mul(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return EmptyInterval
	}
	p1 := i.Lo.Mul(o.Lo)
	p2 := i.Lo.Mul(o.Hi)
	p3 := i.Hi.Mul(o.Lo)
	p4 := i.Hi.Mul(o.Hi)
	return NewInterval(MinExt(MinExt(p1, p2), MinExt(p3, p4)),
		MaxExt(MaxExt(p1, p2), MaxExt(p3, p4)))
}

// Div returns the abstract truncated quotient of a by b. Division by an
// interval containing only zero yields the empty interval; an interval
// straddling zero is split so the result stays sound.
func (i Interval) Div(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return EmptyInterval
	}
	// Split o into strictly negative and strictly positive parts.
	neg := Ints.Meet(o, NewInterval(NegInf, Fin(-1)))
	pos := Ints.Meet(o, NewInterval(Fin(1), PosInf))
	res := EmptyInterval
	for _, part := range []Interval{neg, pos} {
		if part.IsEmpty() {
			continue
		}
		q1 := i.Lo.Div(part.Lo)
		q2 := i.Lo.Div(part.Hi)
		q3 := i.Hi.Div(part.Lo)
		q4 := i.Hi.Div(part.Hi)
		r := NewInterval(MinExt(MinExt(q1, q2), MinExt(q3, q4)),
			MaxExt(MaxExt(q1, q2), MaxExt(q3, q4)))
		res = Ints.Join(res, r)
	}
	return res
}

// Rem returns a sound abstraction of the remainder i % o (Go semantics:
// result has the sign of the dividend).
func (i Interval) Rem(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return EmptyInterval
	}
	// |result| < max(|o.Lo|, |o.Hi|); result sign follows dividend.
	bound := MaxExt(o.Lo.Neg(), o.Hi)
	if !bound.IsFinite() {
		bound = PosInf
	} else if bound.Int() <= 0 {
		return EmptyInterval // divisor can only be zero
	} else {
		bound = Fin(bound.Int() - 1)
	}
	lo, hi := bound.Neg(), bound
	if i.Lo.sign() >= 0 {
		lo = Fin(0)
	}
	if i.Hi.sign() <= 0 {
		hi = Fin(0)
	}
	return NewInterval(lo, hi)
}

// Tri is a three-valued truth value for abstract comparisons.
type Tri int8

// Truth values of Tri.
const (
	TriUnknown Tri = iota // may be either
	TriTrue               // definitely true
	TriFalse              // definitely false
)

// CmpLt abstractly evaluates i < o.
func (i Interval) CmpLt(o Interval) Tri {
	if i.IsEmpty() || o.IsEmpty() {
		return TriUnknown
	}
	if i.Hi.Less(o.Lo) {
		return TriTrue
	}
	if o.Hi.Leq(i.Lo) {
		return TriFalse
	}
	return TriUnknown
}

// CmpLe abstractly evaluates i ≤ o.
func (i Interval) CmpLe(o Interval) Tri {
	if i.IsEmpty() || o.IsEmpty() {
		return TriUnknown
	}
	if i.Hi.Leq(o.Lo) {
		return TriTrue
	}
	if o.Hi.Less(i.Lo) {
		return TriFalse
	}
	return TriUnknown
}

// CmpEq abstractly evaluates i == o.
func (i Interval) CmpEq(o Interval) Tri {
	if i.IsEmpty() || o.IsEmpty() {
		return TriUnknown
	}
	if c, ok := i.IsConst(); ok {
		if d, ok2 := o.IsConst(); ok2 && c == d {
			return TriTrue
		}
	}
	if Ints.Meet(i, o).IsEmpty() {
		return TriFalse
	}
	return TriUnknown
}

// RestrictLt returns the largest sub-interval of i whose elements can be
// strictly below some element admitted by o (refinement for "x < e").
func (i Interval) RestrictLt(o Interval) Interval {
	if o.IsEmpty() {
		return EmptyInterval
	}
	return Ints.Meet(i, NewInterval(NegInf, o.Hi.Sub(Fin(1))))
}

// RestrictLe refines i under "x ≤ e" where e evaluates to o.
func (i Interval) RestrictLe(o Interval) Interval {
	if o.IsEmpty() {
		return EmptyInterval
	}
	return Ints.Meet(i, NewInterval(NegInf, o.Hi))
}

// RestrictGt refines i under "x > e" where e evaluates to o.
func (i Interval) RestrictGt(o Interval) Interval {
	if o.IsEmpty() {
		return EmptyInterval
	}
	return Ints.Meet(i, NewInterval(o.Lo.Add(Fin(1)), PosInf))
}

// RestrictGe refines i under "x ≥ e" where e evaluates to o.
func (i Interval) RestrictGe(o Interval) Interval {
	if o.IsEmpty() {
		return EmptyInterval
	}
	return Ints.Meet(i, NewInterval(o.Lo, PosInf))
}

// RestrictEq refines i under "x == e" where e evaluates to o.
func (i Interval) RestrictEq(o Interval) Interval { return Ints.Meet(i, o) }

// RestrictNe refines i under "x != e" where e evaluates to o: only singleton
// o at one of i's finite bounds can shave the bound.
func (i Interval) RestrictNe(o Interval) Interval {
	if i.IsEmpty() {
		return EmptyInterval
	}
	c, ok := o.IsConst()
	if !ok {
		return i
	}
	if v, ok := i.IsConst(); ok && v == c {
		return EmptyInterval
	}
	if i.Lo.IsFinite() && i.Lo.Int() == c {
		return NewInterval(Fin(c+1), i.Hi)
	}
	if i.Hi.IsFinite() && i.Hi.Int() == c {
		return NewInterval(i.Lo, Fin(c-1))
	}
	return i
}
