// Package lattice provides complete lattices with widening and narrowing
// operators, the value domains over which the solvers in internal/solver
// iterate.
//
// A lattice is described by the Lattice interface, which bundles the order
// (Leq), the lattice operations (Join, Meet), the extremal elements (Bottom,
// Top), and a pair of acceleration operators (Widen, Narrow) as required by
// Cousot and Cousot's widening/narrowing framework and by the combined
// operator ⊟ of Apinis, Seidl and Vojdani (PLDI 2013).
//
// Elements are plain Go values of the type parameter D; all structure lives
// in the Lattice implementation. Implementations must treat elements as
// immutable: operations return fresh values and never mutate arguments.
//
// The package provides the domains used by the paper and its evaluation:
//
//   - Interval: integer intervals with standard and threshold widening,
//   - NatInf: the lattice ℕ ∪ {∞} of the paper's Examples 1–4,
//   - Flat: flat (constant-propagation style) lattices,
//   - Set: finite powersets,
//   - Pair, Map, Lift: product, pointwise map, and bottom-lifting
//     combinators.
package lattice

// Lattice describes a complete lattice over elements of type D together with
// widening and narrowing operators.
//
// The operators must satisfy, for all a, b:
//
//	Join(a, b) is the least upper bound, Meet(a, b) the greatest lower bound;
//	Leq(a, Widen(a, b)) and Leq(b, Widen(a, b)): widening over-approximates
//	the join, and every chain a0, a1 = Widen(a0, b0), ... eventually
//	stabilizes;
//	if Leq(b, a) then Leq(b, Narrow(a, b)) and Leq(Narrow(a, b), a): narrowing
//	interpolates, and every chain a0, a1 = Narrow(a0, b0), ... eventually
//	stabilizes.
//
// Top may panic for lattices whose top element is not representable (for
// example a pointwise map lattice over an unbounded key universe); such
// implementations document this. No solver in this module calls Top.
type Lattice[D any] interface {
	// Bottom returns the least element.
	Bottom() D
	// Top returns the greatest element. It may panic if top is not
	// representable; see the type's documentation.
	Top() D
	// Leq reports whether a is less than or equal to b in the lattice order.
	Leq(a, b D) bool
	// Eq reports whether a and b denote the same lattice element.
	// Implementations may use a structural shortcut but must agree with
	// Leq(a, b) && Leq(b, a).
	Eq(a, b D) bool
	// Join returns the least upper bound of a and b.
	Join(a, b D) D
	// Meet returns the greatest lower bound of a and b.
	Meet(a, b D) D
	// Widen returns the widening a ∇ b. It is an upper bound of a and b and
	// guarantees stabilization of ascending chains.
	Widen(a, b D) D
	// Narrow returns the narrowing a Δ b. It requires b ⊑ a and returns a
	// value between b and a; it guarantees stabilization of descending
	// chains.
	Narrow(a, b D) D
	// Format renders an element for diagnostics and invariant reports.
	Format(a D) string
}

// JoinWiden equips a lattice that has finite ascending chains with trivial
// acceleration operators: Widen = Join and Narrow(a, b) = b. Use it to adapt
// a plain lattice for solvers that demand widening/narrowing.
type JoinWiden[D any] struct {
	Inner interface {
		Bottom() D
		Top() D
		Leq(a, b D) bool
		Eq(a, b D) bool
		Join(a, b D) D
		Meet(a, b D) D
		Format(a D) string
	}
}

// Bottom returns the least element of the inner lattice.
func (l JoinWiden[D]) Bottom() D { return l.Inner.Bottom() }

// Top returns the greatest element of the inner lattice.
func (l JoinWiden[D]) Top() D { return l.Inner.Top() }

// Leq reports the inner lattice order.
func (l JoinWiden[D]) Leq(a, b D) bool { return l.Inner.Leq(a, b) }

// Eq reports inner lattice element equality.
func (l JoinWiden[D]) Eq(a, b D) bool { return l.Inner.Eq(a, b) }

// Join returns the inner least upper bound.
func (l JoinWiden[D]) Join(a, b D) D { return l.Inner.Join(a, b) }

// Meet returns the inner greatest lower bound.
func (l JoinWiden[D]) Meet(a, b D) D { return l.Inner.Meet(a, b) }

// Widen joins; sound as widening only when ascending chains are finite.
func (l JoinWiden[D]) Widen(a, b D) D { return l.Inner.Join(a, b) }

// Narrow returns b, the most precise legal narrowing.
func (l JoinWiden[D]) Narrow(a, b D) D { return b }

// Format renders an element using the inner lattice.
func (l JoinWiden[D]) Format(a D) string { return l.Inner.Format(a) }
