package lattice

import (
	"testing"
	"testing/quick"
)

func TestParityLatticeLaws(t *testing.T) {
	all := []Parity{ParityBot, ParityEven, ParityOdd, ParityTop}
	if err := CheckLaws[Parity](Parities, all); err != nil {
		t.Fatal(err)
	}
}

// Property: parity arithmetic is sound.
func TestParityArithSound(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := int64(a), int64(b)
		px, py := ParityOf(x), ParityOf(y)
		return px.Add(py).Contains(x+y) && px.Mul(py).Contains(x*y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParityOfNegatives(t *testing.T) {
	if ParityOf(-4) != ParityEven || ParityOf(-3) != ParityOdd {
		t.Fatal("ParityOf on negatives")
	}
}

func TestReduceIntervalParity(t *testing.T) {
	iv, p := ReduceIntervalParity(Range(0, 7), ParityEven)
	if !Ints.Eq(iv, Range(0, 6)) || p != ParityEven {
		t.Errorf("reduce([0,7], even) = (%s, %s)", iv, p)
	}
	iv, p = ReduceIntervalParity(Range(1, 8), ParityOdd)
	if !Ints.Eq(iv, Range(1, 7)) || p != ParityOdd {
		t.Errorf("reduce([1,8], odd) = (%s, %s)", iv, p)
	}
	// Singleton refines parity.
	iv, p = ReduceIntervalParity(Singleton(4), ParityTop)
	if !Ints.Eq(iv, Singleton(4)) || p != ParityEven {
		t.Errorf("reduce([4,4], ⊤) = (%s, %s)", iv, p)
	}
	// Contradiction collapses to ⊥.
	iv, p = ReduceIntervalParity(Singleton(3), ParityEven)
	if !iv.IsEmpty() || p != ParityBot {
		t.Errorf("reduce([3,3], even) = (%s, %s)", iv, p)
	}
	// Empty window collapses.
	iv, p = ReduceIntervalParity(Range(3, 3), ParityEven)
	if !iv.IsEmpty() {
		t.Errorf("reduce empty = %s", iv)
	}
	// Infinite bounds untouched.
	iv, p = ReduceIntervalParity(AtLeast(1), ParityEven)
	if !Ints.Eq(iv, AtLeast(2)) {
		t.Errorf("reduce([1,+inf], even) = %s", iv)
	}
	_ = p
}

// Property: reduction is sound — concrete values satisfying both components
// survive.
func TestReduceSound(t *testing.T) {
	f := func(lo8, width uint8, v8 int8, odd bool) bool {
		lo := int64(lo8) - 128
		hi := lo + int64(width)
		iv := Range(lo, hi)
		p := ParityEven
		if odd {
			p = ParityOdd
		}
		v := int64(v8)
		if !iv.Contains(v) || !p.Contains(v) {
			return true // vacuous
		}
		riv, rp := ReduceIntervalParity(iv, p)
		return riv.Contains(v) && rp.Contains(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The reduced product as a pair lattice still satisfies the laws.
func TestIntervalParityProductLaws(t *testing.T) {
	l := NewPairLattice[Interval, Parity](Ints, Parities)
	samples := []Pair[Interval, Parity]{
		l.Bottom(),
		{Range(0, 6), ParityEven},
		{Range(1, 7), ParityOdd},
		{FullInterval, ParityTop},
		{Singleton(4), ParityEven},
	}
	if err := CheckLaws[Pair[Interval, Parity]](l, samples); err != nil {
		t.Fatal(err)
	}
}
