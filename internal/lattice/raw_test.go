package lattice

import (
	"math"
	"math/rand"
	"testing"
)

// rawIntervalSamples builds a seeded sample set that covers every sentinel
// shape: empty, full, half-open rays, ±∞ singletons, and random finite
// intervals (bounds drawn away from the unencodable int64 extremes).
func rawIntervalSamples(seed int64) []Interval {
	rng := rand.New(rand.NewSource(seed))
	samples := []Interval{
		EmptyInterval,
		FullInterval,
		AtLeast(-3),
		AtMost(7),
		Singleton(0),
		Singleton(-1),
		NewInterval(PosInf, PosInf),
		NewInterval(NegInf, NegInf),
		Range(-100, 100),
	}
	for i := 0; i < 40; i++ {
		lo := rng.Int63n(2_000_001) - 1_000_000
		hi := lo + rng.Int63n(5_000)
		samples = append(samples, Range(lo, hi))
		if i%4 == 0 {
			samples = append(samples, AtLeast(lo), AtMost(hi))
		}
	}
	return samples
}

func TestRawIntervalAgreement(t *testing.T) {
	lattices := map[string]*IntervalLattice{
		"plain":      Ints,
		"thresholds": NewIntervalLattice(-64, -1, 0, 10, 100, 4096),
	}
	for name, l := range lattices {
		r := AsRaw[Interval](l)
		if r == nil {
			t.Fatalf("%s: AsRaw returned nil for the interval lattice", name)
		}
		if err := CheckRawAgreement[Interval](l, r, rawIntervalSamples(11)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRawIntervalArithmeticAgreement(t *testing.T) {
	samples := rawIntervalSamples(13)
	enc := func(iv Interval) []uint64 {
		w := make([]uint64, 2)
		Ints.RawEncode(w, iv)
		return w
	}
	for _, a := range samples {
		for _, b := range samples {
			// Skip pairs whose boxed sum is unencodable or panics (opposite
			// infinities); the raw ops mirror the panic.
			func() {
				defer func() { recover() }()
				want := a.Add(b)
				dst := make([]uint64, 2)
				RawIntervalAdd(dst, enc(a), enc(b))
				if got := Ints.RawDecode(dst); !Ints.Eq(got, want) {
					t.Errorf("RawIntervalAdd(%s, %s) = %s, boxed %s", a, b, got, want)
				}
			}()
			func() {
				defer func() { recover() }()
				want := a.Sub(b)
				dst := make([]uint64, 2)
				RawIntervalSub(dst, enc(a), enc(b))
				if got := Ints.RawDecode(dst); !Ints.Eq(got, want) {
					t.Errorf("RawIntervalSub(%s, %s) = %s, boxed %s", a, b, got, want)
				}
			}()
		}
	}
}

func TestRawIntervalEncodePanicsOnSentinelCollision(t *testing.T) {
	for _, v := range []int64{math.MinInt64, math.MaxInt64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RawEncode(Singleton(%d)) did not panic", v)
				}
			}()
			var w [2]uint64
			Ints.RawEncode(w[:], Singleton(v))
		}()
	}
}

func TestRawFlatAgreement(t *testing.T) {
	l := FlatLattice[int64]{}
	r := AsRaw[Flat[int64]](l)
	if r == nil {
		t.Fatal("AsRaw returned nil for FlatLattice[int64]")
	}
	samples := []Flat[int64]{
		{Kind: FlatBot}, {Kind: FlatTop},
		FlatOf[int64](0), FlatOf[int64](1), FlatOf[int64](-5),
		FlatOf[int64](math.MaxInt64), FlatOf[int64](math.MinInt64),
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 30; i++ {
		samples = append(samples, FlatOf(rng.Int63()-rng.Int63()))
	}
	if err := CheckRawAgreement[Flat[int64]](l, r, samples); err != nil {
		t.Fatal(err)
	}
}

func TestRawJoinWidenWrapperAgreement(t *testing.T) {
	// The eqgen flat domain wraps FlatLattice in JoinWiden; AsRaw must see
	// through the wrapper and translate Widen/Narrow to Join/copy-b.
	l := JoinWiden[Flat[int64]]{Inner: FlatLattice[int64]{}}
	r := AsRaw[Flat[int64]](l)
	if r == nil {
		t.Fatal("AsRaw returned nil for JoinWiden over FlatLattice[int64]")
	}
	samples := []Flat[int64]{
		{Kind: FlatBot}, {Kind: FlatTop}, FlatOf[int64](3), FlatOf[int64](-3), FlatOf[int64](16),
	}
	if err := CheckRawAgreement[Flat[int64]](l, r, samples); err != nil {
		t.Fatal(err)
	}
}

func TestRawSignAgreement(t *testing.T) {
	r := AsRaw[Sign](Signs)
	if r == nil {
		t.Fatal("AsRaw returned nil for the sign lattice")
	}
	samples := []Sign{SignBot, SignNeg, SignZero, SignPos, SignLe0, SignGe0, SignNe0, SignTop}
	if err := CheckRawAgreement[Sign](Signs, r, samples); err != nil {
		t.Fatal(err)
	}
}

func TestRawParityAgreement(t *testing.T) {
	r := AsRaw[Parity](Parities)
	if r == nil {
		t.Fatal("AsRaw returned nil for the parity lattice")
	}
	samples := []Parity{ParityBot, ParityEven, ParityOdd, ParityTop}
	if err := CheckRawAgreement[Parity](Parities, r, samples); err != nil {
		t.Fatal(err)
	}
}

func TestRawSetAgreement(t *testing.T) {
	// A 70-element universe forces the bitset across a word boundary.
	for _, size := range []int{16, 70} {
		universe := make([]int, size)
		for i := range universe {
			universe[i] = i
		}
		l := NewSetLattice(universe...)
		r := AsRaw[Set[int]](l)
		if r == nil {
			t.Fatalf("AsRaw returned nil for a %d-element set lattice", size)
		}
		wantStride := (size + 63) / 64
		if got := r.RawWords(); got != wantStride {
			t.Fatalf("RawWords() = %d, want %d", got, wantStride)
		}
		rng := rand.New(rand.NewSource(int64(size)))
		samples := []Set[int]{{}, l.Top(), NewSet(0), NewSet(size - 1)}
		for i := 0; i < 25; i++ {
			var elems []int
			for _, e := range universe {
				if rng.Intn(3) == 0 {
					elems = append(elems, e)
				}
			}
			samples = append(samples, NewSet(elems...))
		}
		if err := CheckRawAgreement[Set[int]](l, r, samples); err != nil {
			t.Fatalf("universe %d: %v", size, err)
		}
	}
}

func TestRawSetEncodeRejectsForeignElements(t *testing.T) {
	l := NewSetLattice(0, 1, 2)
	r := AsRaw[Set[int]](l)
	defer func() {
		if recover() == nil {
			t.Error("RawEncode of an out-of-universe element did not panic")
		}
	}()
	var w [1]uint64
	r.RawEncode(w[:], NewSet(99))
}

func TestAsRawUnsupported(t *testing.T) {
	if r := AsRaw[Set[int]](&SetLattice[int]{}); r != nil {
		t.Error("AsRaw accepted a set lattice without a universe")
	}
	if r := AsRaw[Flat[string]](FlatLattice[string]{}); r != nil {
		t.Error("AsRaw accepted FlatLattice[string]")
	}
	if r := AsRaw[Interval](NewIntervalLattice(math.MaxInt64)); r != nil {
		t.Error("AsRaw accepted an interval lattice with a sentinel-colliding threshold")
	}
}
