package lattice

import (
	"fmt"
	"math"
)

// Ext is an integer extended with -∞ and +∞, the bound type of Interval.
// The zero value is the finite integer 0. Arithmetic saturates: finite
// results that overflow int64 become the corresponding infinity.
type Ext struct {
	class int8 // -1: -∞, 0: finite, +1: +∞
	v     int64
}

// Canonical extended integers.
var (
	NegInf = Ext{class: -1}
	PosInf = Ext{class: +1}
)

// Fin returns the finite extended integer v.
func Fin(v int64) Ext { return Ext{v: v} }

// IsFinite reports whether e is a finite integer.
func (e Ext) IsFinite() bool { return e.class == 0 }

// IsNegInf reports whether e is -∞.
func (e Ext) IsNegInf() bool { return e.class < 0 }

// IsPosInf reports whether e is +∞.
func (e Ext) IsPosInf() bool { return e.class > 0 }

// Int returns the finite value of e. It panics if e is infinite.
func (e Ext) Int() int64 {
	if e.class != 0 {
		panic("lattice: Int on infinite Ext")
	}
	return e.v
}

// Cmp compares a and b, returning -1, 0 or +1.
func (a Ext) Cmp(b Ext) int {
	switch {
	case a.class != b.class:
		if a.class < b.class {
			return -1
		}
		return 1
	case a.class != 0:
		return 0
	case a.v < b.v:
		return -1
	case a.v > b.v:
		return 1
	default:
		return 0
	}
}

// Less reports a < b.
func (a Ext) Less(b Ext) bool { return a.Cmp(b) < 0 }

// Leq reports a ≤ b.
func (a Ext) Leq(b Ext) bool { return a.Cmp(b) <= 0 }

// MinExt returns the smaller of a and b.
func MinExt(a, b Ext) Ext {
	if a.Cmp(b) <= 0 {
		return a
	}
	return b
}

// MaxExt returns the larger of a and b.
func MaxExt(a, b Ext) Ext {
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

// sign returns -1, 0 or +1 for the sign of e.
func (e Ext) sign() int {
	switch {
	case e.class != 0:
		return int(e.class)
	case e.v < 0:
		return -1
	case e.v > 0:
		return 1
	default:
		return 0
	}
}

// Neg returns -e.
func (e Ext) Neg() Ext {
	switch {
	case e.class != 0:
		return Ext{class: -e.class}
	case e.v == math.MinInt64:
		return PosInf // -MinInt64 overflows; saturate
	default:
		return Fin(-e.v)
	}
}

// Add returns a + b with saturation. Adding opposite infinities panics: it
// indicates a bug in interval arithmetic (bottom intervals must be handled
// before operating on bounds).
func (a Ext) Add(b Ext) Ext {
	switch {
	case a.class != 0 && b.class != 0:
		if a.class != b.class {
			panic("lattice: Ext addition of opposite infinities")
		}
		return a
	case a.class != 0:
		return a
	case b.class != 0:
		return b
	}
	s := a.v + b.v
	switch {
	case a.v > 0 && b.v > 0 && s < 0:
		return PosInf
	case a.v < 0 && b.v < 0 && s >= 0:
		return NegInf
	default:
		return Fin(s)
	}
}

// Sub returns a - b with saturation.
func (a Ext) Sub(b Ext) Ext { return a.Add(b.Neg()) }

// Mul returns a * b with saturation; 0 times an infinity is 0, the correct
// convention for interval bound arithmetic.
func (a Ext) Mul(b Ext) Ext {
	sa, sb := a.sign(), b.sign()
	if sa == 0 || sb == 0 {
		return Fin(0)
	}
	if a.class != 0 || b.class != 0 {
		if sa*sb > 0 {
			return PosInf
		}
		return NegInf
	}
	r := a.v * b.v
	if (a.v == -1 && b.v == math.MinInt64) || (b.v == -1 && a.v == math.MinInt64) || r/a.v != b.v {
		if sa*sb > 0 {
			return PosInf
		}
		return NegInf
	}
	return Fin(r)
}

// Div returns a / b (truncated division) with saturation. b must be a
// nonzero finite value or an infinity; division by the finite value 0
// panics (interval division screens zero denominators first).
func (a Ext) Div(b Ext) Ext {
	if b.class != 0 {
		// finite / ∞ = 0; ∞ / ∞ is screened by interval division, but
		// answer with a sound sign anyway.
		if a.class == 0 {
			return Fin(0)
		}
		if a.sign()*b.sign() > 0 {
			return PosInf
		}
		return NegInf
	}
	if b.v == 0 {
		panic("lattice: Ext division by zero")
	}
	if a.class != 0 {
		if a.sign()*b.sign() > 0 {
			return PosInf
		}
		return NegInf
	}
	if a.v == math.MinInt64 && b.v == -1 {
		return PosInf
	}
	return Fin(a.v / b.v)
}

// String renders e as a decimal, "-inf" or "+inf".
func (e Ext) String() string {
	switch e.class {
	case -1:
		return "-inf"
	case +1:
		return "+inf"
	default:
		return fmt.Sprintf("%d", e.v)
	}
}
