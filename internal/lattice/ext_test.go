package lattice

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExtBasics(t *testing.T) {
	if !Fin(3).IsFinite() || Fin(3).Int() != 3 {
		t.Fatalf("Fin(3) broken: %v", Fin(3))
	}
	if !NegInf.IsNegInf() || !PosInf.IsPosInf() {
		t.Fatal("infinity predicates broken")
	}
	if NegInf.String() != "-inf" || PosInf.String() != "+inf" || Fin(-7).String() != "-7" {
		t.Fatalf("String: %s %s %s", NegInf, PosInf, Fin(-7))
	}
}

func TestExtCmpTotalOrder(t *testing.T) {
	vals := []Ext{NegInf, Fin(math.MinInt64), Fin(-1), Fin(0), Fin(1), Fin(math.MaxInt64), PosInf}
	for i, a := range vals {
		for j, b := range vals {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := a.Cmp(b); got != want {
				t.Errorf("Cmp(%s, %s) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestExtMinMax(t *testing.T) {
	if MinExt(Fin(2), PosInf) != Fin(2) {
		t.Error("MinExt(2, +inf)")
	}
	if MaxExt(NegInf, Fin(-5)) != Fin(-5) {
		t.Error("MaxExt(-inf, -5)")
	}
	if MinExt(NegInf, PosInf) != NegInf {
		t.Error("MinExt(-inf, +inf)")
	}
}

func TestExtAddSaturates(t *testing.T) {
	if got := Fin(math.MaxInt64).Add(Fin(1)); !got.IsPosInf() {
		t.Errorf("MaxInt64+1 = %s, want +inf", got)
	}
	if got := Fin(math.MinInt64).Add(Fin(-1)); !got.IsNegInf() {
		t.Errorf("MinInt64-1 = %s, want -inf", got)
	}
	if got := PosInf.Add(Fin(-100)); !got.IsPosInf() {
		t.Errorf("+inf + -100 = %s", got)
	}
	if got := Fin(7).Add(NegInf); !got.IsNegInf() {
		t.Errorf("7 + -inf = %s", got)
	}
}

func TestExtAddOppositeInfinitiesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on -inf + +inf")
		}
	}()
	_ = NegInf.Add(PosInf)
}

func TestExtNeg(t *testing.T) {
	if NegInf.Neg() != PosInf || PosInf.Neg() != NegInf {
		t.Error("Neg on infinities")
	}
	if Fin(5).Neg() != Fin(-5) {
		t.Error("Neg(5)")
	}
	if got := Fin(math.MinInt64).Neg(); !got.IsPosInf() {
		t.Errorf("Neg(MinInt64) = %s, want +inf (saturated)", got)
	}
}

func TestExtMul(t *testing.T) {
	cases := []struct {
		a, b, want Ext
	}{
		{Fin(3), Fin(4), Fin(12)},
		{Fin(-3), Fin(4), Fin(-12)},
		{Fin(0), PosInf, Fin(0)},
		{PosInf, Fin(0), Fin(0)},
		{PosInf, Fin(-2), NegInf},
		{NegInf, NegInf, PosInf},
		{Fin(math.MaxInt64), Fin(2), PosInf},
		{Fin(math.MinInt64), Fin(-1), PosInf},
		{Fin(-1), Fin(math.MinInt64), PosInf},
	}
	for _, c := range cases {
		if got := c.a.Mul(c.b); got != c.want {
			t.Errorf("%s * %s = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestExtDiv(t *testing.T) {
	cases := []struct {
		a, b, want Ext
	}{
		{Fin(7), Fin(2), Fin(3)},
		{Fin(-7), Fin(2), Fin(-3)},
		{Fin(7), PosInf, Fin(0)},
		{PosInf, Fin(3), PosInf},
		{PosInf, Fin(-3), NegInf},
		{Fin(math.MinInt64), Fin(-1), PosInf},
	}
	for _, c := range cases {
		if got := c.a.Div(c.b); got != c.want {
			t.Errorf("%s / %s = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestExtDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on division by zero")
		}
	}()
	_ = Fin(1).Div(Fin(0))
}

// Property: on small finite operands, Ext arithmetic agrees with int64
// arithmetic.
func TestExtArithAgreesWithInt64(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Fin(int64(a)), Fin(int64(b))
		if x.Add(y) != Fin(int64(a)+int64(b)) {
			return false
		}
		if x.Sub(y) != Fin(int64(a)-int64(b)) {
			return false
		}
		if x.Mul(y) != Fin(int64(a)*int64(b)) {
			return false
		}
		if b != 0 && x.Div(y) != Fin(int64(a)/int64(b)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cmp is antisymmetric and consistent with Leq/Less.
func TestExtOrderProperties(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Fin(a), Fin(b)
		if x.Cmp(y) != -y.Cmp(x) {
			return false
		}
		if x.Leq(y) != (x.Cmp(y) <= 0) {
			return false
		}
		if x.Less(y) != (x.Cmp(y) < 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
