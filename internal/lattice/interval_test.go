package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genInterval draws a random interval, including empty and unbounded ones.
func genInterval(r *rand.Rand) Interval {
	switch r.Intn(10) {
	case 0:
		return EmptyInterval
	case 1:
		return FullInterval
	case 2:
		return AtLeast(int64(r.Intn(41) - 20))
	case 3:
		return AtMost(int64(r.Intn(41) - 20))
	default:
		a := int64(r.Intn(41) - 20)
		b := int64(r.Intn(41) - 20)
		if a > b {
			a, b = b, a
		}
		return Range(a, b)
	}
}

func sampleIntervals() []Interval {
	return []Interval{
		EmptyInterval, FullInterval,
		Singleton(0), Singleton(5), Singleton(-3),
		Range(0, 10), Range(-5, 5), Range(3, 4),
		AtLeast(0), AtLeast(7), AtMost(0), AtMost(-2),
	}
}

func TestIntervalLatticeLaws(t *testing.T) {
	if err := CheckLaws[Interval](Ints, sampleIntervals()); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalThresholdLatticeLaws(t *testing.T) {
	l := NewIntervalLattice(-10, -1, 0, 1, 10, 100)
	if err := CheckLaws[Interval](l, sampleIntervals()); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalBasics(t *testing.T) {
	if !EmptyInterval.IsEmpty() {
		t.Fatal("zero value should be empty")
	}
	if NewInterval(Fin(3), Fin(1)) != EmptyInterval {
		t.Fatal("inverted bounds should normalize to empty")
	}
	if v, ok := Singleton(42).IsConst(); !ok || v != 42 {
		t.Fatal("IsConst on singleton")
	}
	if _, ok := Range(1, 2).IsConst(); ok {
		t.Fatal("IsConst on non-singleton")
	}
	if !Range(0, 9).Contains(0) || !Range(0, 9).Contains(9) || Range(0, 9).Contains(10) {
		t.Fatal("Contains")
	}
	if EmptyInterval.String() != "⊥" || Range(1, 2).String() != "[1,2]" {
		t.Fatalf("String: %s %s", EmptyInterval, Range(1, 2))
	}
}

func TestIntervalWiden(t *testing.T) {
	// Stable bounds stay; unstable bounds jump to infinity.
	got := Ints.Widen(Range(0, 10), Range(0, 11))
	if !Ints.Eq(got, NewInterval(Fin(0), PosInf)) {
		t.Errorf("widen up: %s", got)
	}
	got = Ints.Widen(Range(0, 10), Range(-1, 10))
	if !Ints.Eq(got, NewInterval(NegInf, Fin(10))) {
		t.Errorf("widen down: %s", got)
	}
	got = Ints.Widen(Range(0, 10), Range(2, 8))
	if !Ints.Eq(got, Range(0, 10)) {
		t.Errorf("widen stable: %s", got)
	}
	if !Ints.Eq(Ints.Widen(EmptyInterval, Range(1, 2)), Range(1, 2)) {
		t.Error("widen from bottom")
	}
}

func TestIntervalThresholdWiden(t *testing.T) {
	l := NewIntervalLattice(0, 16, 64)
	got := l.Widen(Range(0, 10), Range(0, 11))
	if !l.Eq(got, Range(0, 16)) {
		t.Errorf("threshold widen to 16: %s", got)
	}
	got = l.Widen(Range(0, 16), Range(0, 17))
	if !l.Eq(got, Range(0, 64)) {
		t.Errorf("threshold widen to 64: %s", got)
	}
	got = l.Widen(Range(0, 64), Range(0, 65))
	if !l.Eq(got, NewInterval(Fin(0), PosInf)) {
		t.Errorf("threshold widen to +inf: %s", got)
	}
	got = l.Widen(Range(5, 10), Range(-3, 10))
	if !l.Eq(got, Range(0, 10)) { // nearest threshold below -3... none below except 0? 0 > -3, so -inf
		// threshold below -3: none of {0,16,64} is ≤ -3, so lower bound widens to -inf.
		if !l.Eq(got, NewInterval(NegInf, Fin(10))) {
			t.Errorf("threshold widen low: %s", got)
		}
	}
}

func TestIntervalNarrow(t *testing.T) {
	// Only infinite bounds are refined.
	a := NewInterval(Fin(0), PosInf)
	b := Range(0, 10)
	if got := Ints.Narrow(a, b); !Ints.Eq(got, Range(0, 10)) {
		t.Errorf("narrow hi: %s", got)
	}
	a = Range(0, 100)
	b = Range(5, 50)
	if got := Ints.Narrow(a, b); !Ints.Eq(got, Range(0, 100)) {
		t.Errorf("narrow must not refine finite bounds: %s", got)
	}
	if got := Ints.Narrow(FullInterval, EmptyInterval); !got.IsEmpty() {
		t.Errorf("narrow to bottom: %s", got)
	}
}

func TestIntervalWideningChainsStabilize(t *testing.T) {
	// f(x) = x join (x+[1,1]) join [0,0]: the canonical counting loop.
	f := func(x Interval) Interval {
		return Ints.Join(Singleton(0), x.Add(Singleton(1)))
	}
	if err := CheckWideningStabilizes[Interval](Ints, f, 10); err != nil {
		t.Error(err)
	}
	l := NewIntervalLattice(1, 2, 4, 8, 16, 32)
	if err := CheckWideningStabilizes[Interval](l, f, 20); err != nil {
		t.Error(err)
	}
}

func TestIntervalNarrowingChainsStabilize(t *testing.T) {
	f := func(x Interval) Interval {
		return Ints.Join(Singleton(0), Ints.Meet(x.Add(Singleton(1)), AtMost(100)))
	}
	if err := CheckNarrowingStabilizes[Interval](Ints, f, FullInterval, 10); err != nil {
		t.Error(err)
	}
}

// Property: abstract arithmetic is sound — for concrete values inside the
// operand intervals, the concrete result lies inside the abstract result.
func TestIntervalArithSound(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pick := func(i Interval) (int64, bool) {
		if i.IsEmpty() {
			return 0, false
		}
		lo, hi := int64(-100), int64(100)
		if i.Lo.IsFinite() {
			lo = i.Lo.Int()
		}
		if i.Hi.IsFinite() {
			hi = i.Hi.Int()
		}
		if lo > hi {
			return lo, true
		}
		return lo + r.Int63n(hi-lo+1), true
	}
	for trial := 0; trial < 5000; trial++ {
		a, b := genInterval(r), genInterval(r)
		x, okx := pick(a)
		y, oky := pick(b)
		if !okx || !oky {
			continue
		}
		if got := a.Add(b); !got.Contains(x + y) {
			t.Fatalf("Add unsound: %d ∈ %s, %d ∈ %s, but %d ∉ %s", x, a, y, b, x+y, got)
		}
		if got := a.Sub(b); !got.Contains(x - y) {
			t.Fatalf("Sub unsound: %d - %d ∉ %s (a=%s b=%s)", x, y, got, a, b)
		}
		if got := a.Mul(b); !got.Contains(x * y) {
			t.Fatalf("Mul unsound: %d * %d ∉ %s (a=%s b=%s)", x, y, got, a, b)
		}
		if y != 0 {
			if got := a.Div(b); !got.Contains(x / y) {
				t.Fatalf("Div unsound: %d / %d = %d ∉ %s (a=%s b=%s)", x, y, x/y, got, a, b)
			}
			if got := a.Rem(b); !got.Contains(x % y) {
				t.Fatalf("Rem unsound: %d %% %d = %d ∉ %s (a=%s b=%s)", x, y, x%y, got, a, b)
			}
		}
		if got := a.Neg(); !got.Contains(-x) {
			t.Fatalf("Neg unsound: -%d ∉ %s", x, got)
		}
	}
}

// Property: comparisons are sound three-valued answers.
func TestIntervalCmpSound(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5000; trial++ {
		a, b := genInterval(r), genInterval(r)
		if a.IsEmpty() || b.IsEmpty() {
			continue
		}
		loA, hiA := a.Lo, a.Hi
		loB, hiB := b.Lo, b.Hi
		_ = loA
		_ = loB
		_ = hiA
		_ = hiB
		check := func(name string, tri Tri, holdsForAll, holdsForNone bool) {
			switch tri {
			case TriTrue:
				if !holdsForAll {
					t.Fatalf("%s claimed true but not universal: a=%s b=%s", name, a, b)
				}
			case TriFalse:
				if !holdsForNone {
					t.Fatalf("%s claimed false but possible: a=%s b=%s", name, a, b)
				}
			}
		}
		// Exhaustively check small finite intervals only.
		if a.Lo.IsFinite() && a.Hi.IsFinite() && b.Lo.IsFinite() && b.Hi.IsFinite() &&
			a.Hi.Int()-a.Lo.Int() < 50 && b.Hi.Int()-b.Lo.Int() < 50 {
			allLt, noneLt := true, true
			allLe, noneLe := true, true
			allEq, noneEq := true, true
			for x := a.Lo.Int(); x <= a.Hi.Int(); x++ {
				for y := b.Lo.Int(); y <= b.Hi.Int(); y++ {
					if x < y {
						noneLt = false
					} else {
						allLt = false
					}
					if x <= y {
						noneLe = false
					} else {
						allLe = false
					}
					if x == y {
						noneEq = false
					} else {
						allEq = false
					}
				}
			}
			check("CmpLt", a.CmpLt(b), allLt, noneLt)
			check("CmpLe", a.CmpLe(b), allLe, noneLe)
			check("CmpEq", a.CmpEq(b), allEq, noneEq)
		}
	}
}

// Property: branch refinement keeps every concrete value that satisfies the
// guard.
func TestIntervalRestrictSound(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5000; trial++ {
		a, b := genInterval(r), genInterval(r)
		if a.IsEmpty() || b.IsEmpty() {
			continue
		}
		if !a.Lo.IsFinite() || !a.Hi.IsFinite() || !b.Lo.IsFinite() || !b.Hi.IsFinite() {
			continue
		}
		if a.Hi.Int()-a.Lo.Int() > 40 || b.Hi.Int()-b.Lo.Int() > 40 {
			continue
		}
		for x := a.Lo.Int(); x <= a.Hi.Int(); x++ {
			for y := b.Lo.Int(); y <= b.Hi.Int(); y++ {
				if x < y && !a.RestrictLt(b).Contains(x) {
					t.Fatalf("RestrictLt dropped %d (a=%s b=%s)", x, a, b)
				}
				if x <= y && !a.RestrictLe(b).Contains(x) {
					t.Fatalf("RestrictLe dropped %d (a=%s b=%s)", x, a, b)
				}
				if x > y && !a.RestrictGt(b).Contains(x) {
					t.Fatalf("RestrictGt dropped %d (a=%s b=%s)", x, a, b)
				}
				if x >= y && !a.RestrictGe(b).Contains(x) {
					t.Fatalf("RestrictGe dropped %d (a=%s b=%s)", x, a, b)
				}
				if x == y && !a.RestrictEq(b).Contains(x) {
					t.Fatalf("RestrictEq dropped %d (a=%s b=%s)", x, a, b)
				}
				if x != y && !a.RestrictNe(b).Contains(x) {
					t.Fatalf("RestrictNe dropped %d (a=%s b=%s)", x, a, b)
				}
			}
		}
	}
}

// Property: Join/Meet/Widen/Narrow of random intervals obey the interface
// contracts (via quick with a custom generator realized by seeding).
func TestIntervalRandomLaws(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	samples := make([]Interval, 0, 24)
	for i := 0; i < 24; i++ {
		samples = append(samples, genInterval(r))
	}
	if err := CheckLaws[Interval](Ints, samples); err != nil {
		t.Fatal(err)
	}
}

// quick.Check on the relation between Leq and Join for random finite ranges.
func TestIntervalLeqJoinQuick(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		lo1, hi1 := int64(a1), int64(a2)
		if lo1 > hi1 {
			lo1, hi1 = hi1, lo1
		}
		lo2, hi2 := int64(b1), int64(b2)
		if lo2 > hi2 {
			lo2, hi2 = hi2, lo2
		}
		a, b := Range(lo1, hi1), Range(lo2, hi2)
		j := Ints.Join(a, b)
		return Ints.Leq(a, j) && Ints.Leq(b, j) &&
			(Ints.Leq(a, b) == Ints.Eq(j, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
