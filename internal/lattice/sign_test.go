package lattice

import (
	"testing"
	"testing/quick"
)

func allSigns() []Sign {
	return []Sign{SignBot, SignNeg, SignZero, SignPos, SignLe0, SignGe0, SignNe0, SignTop}
}

func TestSignLatticeLaws(t *testing.T) {
	if err := CheckLaws[Sign](Signs, allSigns()); err != nil {
		t.Fatal(err)
	}
}

func TestSignOf(t *testing.T) {
	if SignOf(-3) != SignNeg || SignOf(0) != SignZero || SignOf(7) != SignPos {
		t.Fatal("SignOf")
	}
}

func TestSignOfInterval(t *testing.T) {
	cases := []struct {
		iv   Interval
		want Sign
	}{
		{EmptyInterval, SignBot},
		{Singleton(0), SignZero},
		{Range(1, 5), SignPos},
		{Range(-5, -1), SignNeg},
		{Range(-2, 3), SignTop},
		{Range(0, 3), SignGe0},
		{Range(-3, 0), SignLe0},
		{FullInterval, SignTop},
		{AtLeast(1), SignPos},
	}
	for _, c := range cases {
		if got := SignOfInterval(c.iv); got != c.want {
			t.Errorf("SignOfInterval(%s) = %s, want %s", c.iv, got, c.want)
		}
	}
}

// Property: sign arithmetic is sound w.r.t. concrete arithmetic.
func TestSignArithSound(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := int64(a), int64(b)
		sx, sy := SignOf(x), SignOf(y)
		if !sx.Add(sy).Contains(x + y) {
			return false
		}
		if !sx.Mul(sy).Contains(x * y) {
			return false
		}
		return sx.Neg().Contains(-x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transfer functions are monotone on the 8-element lattice
// (exhaustive check).
func TestSignArithMonotone(t *testing.T) {
	for _, a := range allSigns() {
		for _, a2 := range allSigns() {
			if !Signs.Leq(a, a2) {
				continue
			}
			for _, b := range allSigns() {
				if !Signs.Leq(a.Add(b), a2.Add(b)) {
					t.Fatalf("Add not monotone: %s⊑%s but %s⋢%s", a, a2, a.Add(b), a2.Add(b))
				}
				if !Signs.Leq(a.Mul(b), a2.Mul(b)) {
					t.Fatalf("Mul not monotone at %s⊑%s, b=%s", a, a2, b)
				}
			}
			if !Signs.Leq(a.Neg(), a2.Neg()) {
				t.Fatalf("Neg not monotone at %s⊑%s", a, a2)
			}
		}
	}
}

func TestSignStrings(t *testing.T) {
	want := map[Sign]string{
		SignBot: "⊥", SignNeg: "-", SignZero: "0", SignPos: "+",
		SignLe0: "≤0", SignGe0: "≥0", SignNe0: "≠0", SignTop: "⊤",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %s, want %s", s, s, w)
		}
	}
}
