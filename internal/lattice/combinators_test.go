package lattice

import "testing"

func TestPairLatticeLaws(t *testing.T) {
	l := NewPairLattice[Interval, Nat](Ints, NatInf)
	samples := []Pair[Interval, Nat]{
		l.Bottom(), l.Top(),
		{Range(0, 5), NatOf(2)},
		{AtLeast(1), NatInfElem},
		{EmptyInterval, NatOf(7)},
	}
	if err := CheckLaws[Pair[Interval, Nat]](l, samples); err != nil {
		t.Fatal(err)
	}
}

func TestPairComponentwise(t *testing.T) {
	l := NewPairLattice[Interval, Interval](Ints, Ints)
	a := Pair[Interval, Interval]{Range(0, 1), Range(5, 9)}
	b := Pair[Interval, Interval]{Range(1, 2), Range(6, 7)}
	j := l.Join(a, b)
	if !Ints.Eq(j.Fst, Range(0, 2)) || !Ints.Eq(j.Snd, Range(5, 9)) {
		t.Errorf("join: %s", l.Format(j))
	}
	w := l.Widen(a, b)
	if !Ints.Eq(w.Fst, NewInterval(Fin(0), PosInf)) {
		t.Errorf("widen fst: %s", Ints.Format(w.Fst))
	}
}

func TestLiftLatticeLaws(t *testing.T) {
	l := NewLiftLattice[Interval](Ints)
	samples := []Lifted[Interval]{
		l.Bottom(),
		LiftOf(EmptyInterval),
		LiftOf(Range(0, 3)),
		LiftOf(FullInterval),
	}
	if err := CheckLaws[Lifted[Interval]](l, samples); err != nil {
		t.Fatal(err)
	}
}

func TestLiftDistinguishesUnreachable(t *testing.T) {
	l := NewLiftLattice[Interval](Ints)
	if l.Eq(l.Bottom(), LiftOf(EmptyInterval)) {
		t.Fatal("lifted bottom must differ from inner bottom")
	}
	if !l.Leq(l.Bottom(), LiftOf(EmptyInterval)) {
		t.Fatal("lifted bottom must be below inner bottom")
	}
	if got := l.Join(l.Bottom(), LiftOf(Range(1, 2))); got.Bot || !Ints.Eq(got.V, Range(1, 2)) {
		t.Fatalf("join with lifted bottom: %s", l.Format(got))
	}
}

func TestMapLatticeLaws(t *testing.T) {
	l := NewMapLattice[string, Interval](Ints)
	samples := []map[string]Interval{
		nil,
		{"x": Range(0, 1)},
		{"x": Range(0, 5), "y": Singleton(3)},
		{"y": AtLeast(0)},
		{"x": FullInterval},
	}
	if err := CheckLaws[map[string]Interval](l, samples); err != nil {
		t.Fatal(err)
	}
}

func TestMapLatticeGetSet(t *testing.T) {
	l := NewMapLattice[string, Interval](Ints)
	m := l.Set(nil, "x", Range(1, 2))
	if !Ints.Eq(l.Get(m, "x"), Range(1, 2)) {
		t.Fatal("Set/Get")
	}
	if !Ints.Eq(l.Get(m, "missing"), EmptyInterval) {
		t.Fatal("default for missing key")
	}
	// Setting a default value on a fresh key keeps maps small.
	m2 := l.Set(nil, "z", EmptyInterval)
	if len(m2) != 0 {
		t.Fatalf("fresh default binding should be dropped, got %v", m2)
	}
	// Set must not mutate its argument.
	_ = l.Set(m, "x", Singleton(9))
	if !Ints.Eq(l.Get(m, "x"), Range(1, 2)) {
		t.Fatal("Set mutated input map")
	}
}

func TestMapLatticePointwise(t *testing.T) {
	l := NewMapLattice[string, Interval](Ints)
	a := map[string]Interval{"x": Range(0, 1)}
	b := map[string]Interval{"x": Range(2, 3), "y": Singleton(7)}
	j := l.Join(a, b)
	if !Ints.Eq(l.Get(j, "x"), Range(0, 3)) || !Ints.Eq(l.Get(j, "y"), Singleton(7)) {
		t.Errorf("join: %s", l.Format(j))
	}
	w := l.Widen(a, b)
	if !Ints.Eq(l.Get(w, "x"), NewInterval(Fin(0), PosInf)) {
		t.Errorf("widen: %s", l.Format(w))
	}
	if !l.Leq(a, j) || !l.Leq(b, j) {
		t.Error("join not an upper bound")
	}
}

func TestJoinWidenAdapter(t *testing.T) {
	l := JoinWiden[Flat[int]]{Inner: FlatLattice[int]{}}
	a, b := FlatOf(1), FlatOf(2)
	if got := l.Widen(a, b); got.Kind != FlatTop {
		t.Errorf("JoinWiden.Widen should join: %s", l.Format(got))
	}
	if got := l.Narrow(l.Top(), a); !l.Eq(got, a) {
		t.Errorf("JoinWiden.Narrow should return b: %s", l.Format(got))
	}
	if err := CheckLaws[Flat[int]](l, []Flat[int]{l.Bottom(), l.Top(), a, b}); err != nil {
		t.Fatal(err)
	}
}
