package lattice_test

import (
	"fmt"

	"warrow/internal/lattice"
)

// ExampleIntervalLattice_Widen shows the standard interval acceleration:
// the unstable upper bound jumps to +inf, and narrowing recovers it once a
// smaller value is available.
func ExampleIntervalLattice_Widen() {
	l := lattice.Ints
	a := lattice.Range(0, 10)
	b := lattice.Range(0, 11)
	w := l.Widen(a, b)
	n := l.Narrow(w, lattice.Range(0, 42))
	fmt.Println("widen :", w)
	fmt.Println("narrow:", n)
	// Output:
	// widen : [0,+inf]
	// narrow: [0,42]
}

// ExampleNewIntervalLattice demonstrates threshold widening: unstable
// bounds jump to the nearest threshold before giving up to infinity.
func ExampleNewIntervalLattice() {
	l := lattice.NewIntervalLattice(16, 64)
	a := lattice.Range(0, 10)
	fmt.Println(l.Widen(a, lattice.Range(0, 11)))
	fmt.Println(l.Widen(lattice.Range(0, 16), lattice.Range(0, 17)))
	fmt.Println(l.Widen(lattice.Range(0, 64), lattice.Range(0, 65)))
	// Output:
	// [0,16]
	// [0,64]
	// [0,+inf]
}

// ExampleInterval_Div shows that interval division screens zero from the
// divisor and joins the negative and positive parts.
func ExampleInterval_Div() {
	num := lattice.Range(10, 20)
	den := lattice.Range(-2, 5)
	fmt.Println(num.Div(den))
	// Output:
	// [-20,20]
}

// ExampleReduceIntervalParity shows the reduced product of intervals and
// parities sharpening each component with the other.
func ExampleReduceIntervalParity() {
	iv, p := lattice.ReduceIntervalParity(lattice.Range(0, 7), lattice.ParityEven)
	fmt.Println(iv, p)
	iv, p = lattice.ReduceIntervalParity(lattice.Singleton(4), lattice.ParityTop)
	fmt.Println(iv, p)
	// Output:
	// [0,6] even
	// [4,4] even
}

// ExampleCheckLaws validates a custom lattice against the algebraic laws.
func ExampleCheckLaws() {
	err := lattice.CheckLaws[lattice.Sign](lattice.Signs,
		[]lattice.Sign{lattice.SignBot, lattice.SignNeg, lattice.SignGe0, lattice.SignTop})
	fmt.Println(err)
	// Output:
	// <nil>
}
