// Raw value encodings: fixed-width machine-word representations of lattice
// elements, the value-axis counterpart of the solver's dense index core.
//
// A lattice that implements Raw[D] can represent every element it will ever
// produce as RawWords() consecutive uint64 words, with all lattice
// operations running directly on word slices — no interface boxing, no
// per-operation heap allocation. The encodings are canonical: two elements
// are Eq exactly when their encodings are word-for-word equal, which is
// what lets RawEq be a plain word comparison and keeps the unboxed solver
// core bit-identical to the boxed ones (see DESIGN.md §11).
//
// Encodings:
//
//   - Interval: two words holding the bounds as int64 bit patterns, with
//     the sentinel patterns of Ext mapped order-preservingly — -∞ is
//     math.MinInt64, +∞ is math.MaxInt64, finite v is v itself. The empty
//     interval is the pair (+∞, -∞), i.e. lo > hi, which no non-empty
//     interval can exhibit. The two finite values MinInt64 and MaxInt64
//     collide with the sentinels and are unencodable; RawEncode panics on
//     them rather than corrupt values silently.
//   - Flat[int64]: two words, kind and value (value word is 0 unless the
//     kind is FlatVal, keeping the encoding canonical).
//   - Sign, Parity: one word holding the bitset.
//   - Set[T] (with a universe): ⌈|universe|/64⌉ words, bit i meaning
//     universe[i] is a member.
//
// All ternary operations tolerate dst aliasing a or b (they read their
// inputs before writing dst), so solvers can update values in place.
package lattice

import (
	"fmt"
	"math"
)

// Raw is implemented by lattices whose elements admit a fixed-width word
// encoding. dst, a and b are always RawWords() long; dst may alias a or b.
type Raw[D any] interface {
	// RawWords is the number of uint64 words per element (the stride).
	RawWords() int
	// RawEncode writes the canonical encoding of d into dst. It panics on
	// elements the encoding cannot represent (see the package comment).
	RawEncode(dst []uint64, d D)
	// RawDecode reads an element back. Decode inverts Encode exactly.
	RawDecode(src []uint64) D
	// RawBottom writes the encoding of the bottom element.
	RawBottom(dst []uint64)
	// RawLeq, RawEq, RawJoin, RawMeet, RawWiden and RawNarrow mirror the
	// boxed lattice operations bit for bit on encoded arguments.
	RawLeq(a, b []uint64) bool
	RawEq(a, b []uint64) bool
	RawJoin(dst, a, b []uint64)
	RawMeet(dst, a, b []uint64)
	RawWiden(dst, a, b []uint64)
	RawNarrow(dst, a, b []uint64)
}

// rawGated lets a Raw implementation veto its own use for instances whose
// configuration the encoding cannot honor (an interval lattice with
// unencodable thresholds, a set lattice without a universe).
type rawGated interface {
	rawOK() bool
}

// AsRaw resolves the raw encoding of a lattice instance, or nil when the
// instance has none. It recognizes direct implementations, the
// FlatLattice[int64] instantiation, and JoinWiden wrappers around any of
// those (the wrapper's Widen = Join and Narrow = b are translated to the
// raw layer).
func AsRaw[D any](l Lattice[D]) Raw[D] {
	if r := asRawDirect[D](l); r != nil {
		return r
	}
	if jw, ok := any(l).(JoinWiden[D]); ok {
		if inner := asRawDirect[D](jw.Inner); inner != nil {
			return joinWidenRaw[D]{inner: inner}
		}
	}
	return nil
}

// asRawDirect resolves l itself, without unwrapping combinators.
func asRawDirect[D any](l any) Raw[D] {
	if l == nil {
		return nil
	}
	if _, ok := l.(FlatLattice[int64]); ok {
		// FlatLattice is generic and Go cannot attach methods to one
		// instantiation, so the int64 case routes through a dedicated
		// wrapper type.
		r, _ := any(flatInt64Raw{}).(Raw[D])
		return r
	}
	r, ok := l.(Raw[D])
	if !ok {
		return nil
	}
	if g, gated := l.(rawGated); gated && !g.rawOK() {
		return nil
	}
	return r
}

// joinWidenRaw adapts an inner raw encoding to the JoinWiden combinator.
type joinWidenRaw[D any] struct {
	inner Raw[D]
}

func (w joinWidenRaw[D]) RawWords() int                { return w.inner.RawWords() }
func (w joinWidenRaw[D]) RawEncode(dst []uint64, d D)  { w.inner.RawEncode(dst, d) }
func (w joinWidenRaw[D]) RawDecode(src []uint64) D     { return w.inner.RawDecode(src) }
func (w joinWidenRaw[D]) RawBottom(dst []uint64)       { w.inner.RawBottom(dst) }
func (w joinWidenRaw[D]) RawLeq(a, b []uint64) bool    { return w.inner.RawLeq(a, b) }
func (w joinWidenRaw[D]) RawEq(a, b []uint64) bool     { return w.inner.RawEq(a, b) }
func (w joinWidenRaw[D]) RawJoin(dst, a, b []uint64)   { w.inner.RawJoin(dst, a, b) }
func (w joinWidenRaw[D]) RawMeet(dst, a, b []uint64)   { w.inner.RawMeet(dst, a, b) }
func (w joinWidenRaw[D]) RawWiden(dst, a, b []uint64)  { w.inner.RawJoin(dst, a, b) }
func (w joinWidenRaw[D]) RawNarrow(dst, a, b []uint64) { copy(dst, b) }

// ---------------------------------------------------------------------------
// Interval: two words, bounds as order-preserving int64 bit patterns.

// rawExtEncode maps an Ext bound to its word: the mapping preserves order,
// so bound comparisons on words are plain signed comparisons.
func rawExtEncode(e Ext) int64 {
	if e.IsFinite() {
		v := e.Int()
		if v == math.MinInt64 || v == math.MaxInt64 {
			panic(fmt.Sprintf("lattice: finite interval bound %d collides with the ±∞ sentinel encoding; use the boxed core for values at the int64 extremes", v))
		}
		return v
	}
	if e.IsNegInf() {
		return math.MinInt64
	}
	return math.MaxInt64
}

// rawExtDecode inverts rawExtEncode.
func rawExtDecode(w int64) Ext {
	switch w {
	case math.MinInt64:
		return NegInf
	case math.MaxInt64:
		return PosInf
	default:
		return Fin(w)
	}
}

// rawIntervalSetEmpty writes the canonical empty sentinel (+∞, -∞): the
// only encoding with lo > hi, so emptiness tests are a single comparison.
func rawIntervalSetEmpty(dst []uint64) {
	dst[0] = uint64(math.MaxInt64)
	dst[1] = uint64(1) << 63 // bit pattern of math.MinInt64
}

// RawWords implements Raw: an interval is a (lo, hi) word pair.
func (l *IntervalLattice) RawWords() int { return 2 }

// rawOK vetoes instances whose thresholds collide with the sentinels.
func (l *IntervalLattice) rawOK() bool {
	for _, t := range l.thresholds {
		if t == math.MinInt64 || t == math.MaxInt64 {
			return false
		}
	}
	return true
}

// RawEncode implements Raw.
func (l *IntervalLattice) RawEncode(dst []uint64, d Interval) {
	if d.IsEmpty() {
		rawIntervalSetEmpty(dst)
		return
	}
	dst[0] = uint64(rawExtEncode(d.Lo))
	dst[1] = uint64(rawExtEncode(d.Hi))
}

// RawDecode implements Raw.
func (l *IntervalLattice) RawDecode(src []uint64) Interval {
	lo, hi := int64(src[0]), int64(src[1])
	if lo > hi {
		return EmptyInterval
	}
	return Interval{Lo: rawExtDecode(lo), Hi: rawExtDecode(hi), nonEmpty: true}
}

// RawBottom implements Raw.
func (l *IntervalLattice) RawBottom(dst []uint64) { rawIntervalSetEmpty(dst) }

// RawLeq implements Raw.
func (l *IntervalLattice) RawLeq(a, b []uint64) bool { return RawIntervalLeq(a, b) }

// RawEq implements Raw: encodings are canonical, so equality is word
// equality.
func (l *IntervalLattice) RawEq(a, b []uint64) bool { return a[0] == b[0] && a[1] == b[1] }

// RawJoin implements Raw.
func (l *IntervalLattice) RawJoin(dst, a, b []uint64) { RawIntervalJoin(dst, a, b) }

// RawMeet implements Raw.
func (l *IntervalLattice) RawMeet(dst, a, b []uint64) { RawIntervalMeet(dst, a, b) }

// RawWiden implements Raw, honoring the instance's widening thresholds
// exactly like the boxed Widen.
func (l *IntervalLattice) RawWiden(dst, a, b []uint64) {
	alo, ahi := int64(a[0]), int64(a[1])
	blo, bhi := int64(b[0]), int64(b[1])
	if alo > ahi {
		dst[0], dst[1] = b[0], b[1]
		return
	}
	if blo > bhi {
		dst[0], dst[1] = uint64(alo), uint64(ahi)
		return
	}
	lo := alo
	if blo < alo {
		lo = l.rawWidenLo(blo)
	}
	hi := ahi
	if ahi < bhi {
		hi = l.rawWidenHi(bhi)
	}
	dst[0], dst[1] = uint64(lo), uint64(hi)
}

// rawWidenLo mirrors widenLo on words: the largest threshold ≤ b, else -∞.
func (l *IntervalLattice) rawWidenLo(b int64) int64 {
	if b != math.MinInt64 && b != math.MaxInt64 {
		for i := len(l.thresholds) - 1; i >= 0; i-- {
			if l.thresholds[i] <= b {
				return l.thresholds[i]
			}
		}
	}
	return math.MinInt64
}

// rawWidenHi mirrors widenHi on words: the smallest threshold ≥ b, else +∞.
func (l *IntervalLattice) rawWidenHi(b int64) int64 {
	if b != math.MinInt64 && b != math.MaxInt64 {
		for _, t := range l.thresholds {
			if b <= t {
				return t
			}
		}
	}
	return math.MaxInt64
}

// RawNarrow implements Raw: only infinite bounds of a improve to b's.
func (l *IntervalLattice) RawNarrow(dst, a, b []uint64) {
	alo, ahi := int64(a[0]), int64(a[1])
	blo, bhi := int64(b[0]), int64(b[1])
	if alo > ahi || blo > bhi {
		dst[0], dst[1] = b[0], b[1]
		return
	}
	lo := alo
	if alo == math.MinInt64 {
		lo = blo
	}
	hi := ahi
	if ahi == math.MaxInt64 {
		hi = bhi
	}
	if lo > hi {
		rawIntervalSetEmpty(dst)
		return
	}
	dst[0], dst[1] = uint64(lo), uint64(hi)
}

// The package-level interval helpers below are the fused-path entry points:
// eqgen/eqdsl right-hand sides call them directly (concrete functions, not
// interface methods), so the compiler keeps every operand on the stack.

// RawIntervalLeq reports inclusion on encoded intervals.
func RawIntervalLeq(a, b []uint64) bool {
	alo, ahi := int64(a[0]), int64(a[1])
	blo, bhi := int64(b[0]), int64(b[1])
	if alo > ahi {
		return true
	}
	if blo > bhi {
		return false
	}
	return blo <= alo && ahi <= bhi
}

// RawIntervalJoin writes the smallest encoded interval containing a and b.
func RawIntervalJoin(dst, a, b []uint64) {
	alo, ahi := int64(a[0]), int64(a[1])
	blo, bhi := int64(b[0]), int64(b[1])
	if alo > ahi {
		dst[0], dst[1] = uint64(blo), uint64(bhi)
		return
	}
	if blo > bhi {
		dst[0], dst[1] = uint64(alo), uint64(ahi)
		return
	}
	if blo < alo {
		alo = blo
	}
	if bhi > ahi {
		ahi = bhi
	}
	dst[0], dst[1] = uint64(alo), uint64(ahi)
}

// RawIntervalMeet writes the intersection of the encoded intervals.
func RawIntervalMeet(dst, a, b []uint64) {
	alo, ahi := int64(a[0]), int64(a[1])
	blo, bhi := int64(b[0]), int64(b[1])
	if alo > ahi || blo > bhi {
		rawIntervalSetEmpty(dst)
		return
	}
	if blo > alo {
		alo = blo
	}
	if bhi < ahi {
		ahi = bhi
	}
	if alo > ahi {
		rawIntervalSetEmpty(dst)
		return
	}
	dst[0], dst[1] = uint64(alo), uint64(ahi)
}

// rawExtAdd mirrors Ext.Add on words: saturating addition with the same
// overflow-to-infinity behavior and the same panic on opposite infinities.
// A non-overflowing sum that lands exactly on a sentinel value is
// unencodable and panics, where the boxed arithmetic would produce
// Fin(MinInt64) or Fin(MaxInt64).
func rawExtAdd(a, b int64) int64 {
	aInf := a == math.MinInt64 || a == math.MaxInt64
	bInf := b == math.MinInt64 || b == math.MaxInt64
	switch {
	case aInf && bInf:
		if a != b {
			panic("lattice: adding opposite infinities")
		}
		return a
	case aInf:
		return a
	case bInf:
		return b
	}
	s := a + b
	if a > 0 && b > 0 && s < 0 {
		return math.MaxInt64
	}
	if a < 0 && b < 0 && s >= 0 {
		return math.MinInt64
	}
	if s == math.MinInt64 || s == math.MaxInt64 {
		panic(fmt.Sprintf("lattice: interval bound sum %d collides with the ±∞ sentinel encoding", s))
	}
	return s
}

// rawExtNeg mirrors Ext.Neg on words: infinities flip; a finite negation
// that lands on a sentinel is unencodable and panics.
func rawExtNeg(a int64) int64 {
	switch a {
	case math.MinInt64:
		return math.MaxInt64
	case math.MaxInt64:
		return math.MinInt64
	}
	if -a == math.MaxInt64 {
		panic(fmt.Sprintf("lattice: negated interval bound %d collides with the ±∞ sentinel encoding", -a))
	}
	return -a
}

// RawIntervalAdd writes the abstract sum of the encoded intervals,
// mirroring Interval.Add.
func RawIntervalAdd(dst, a, b []uint64) {
	alo, ahi := int64(a[0]), int64(a[1])
	blo, bhi := int64(b[0]), int64(b[1])
	if alo > ahi || blo > bhi {
		rawIntervalSetEmpty(dst)
		return
	}
	lo := rawExtAdd(alo, blo)
	hi := rawExtAdd(ahi, bhi)
	if lo > hi {
		rawIntervalSetEmpty(dst)
		return
	}
	dst[0], dst[1] = uint64(lo), uint64(hi)
}

// RawIntervalSub writes the abstract difference of the encoded intervals,
// mirroring Interval.Sub: [alo-bhi, ahi-blo].
func RawIntervalSub(dst, a, b []uint64) {
	alo, ahi := int64(a[0]), int64(a[1])
	blo, bhi := int64(b[0]), int64(b[1])
	if alo > ahi || blo > bhi {
		rawIntervalSetEmpty(dst)
		return
	}
	lo := rawExtAdd(alo, rawExtNeg(bhi))
	hi := rawExtAdd(ahi, rawExtNeg(blo))
	if lo > hi {
		rawIntervalSetEmpty(dst)
		return
	}
	dst[0], dst[1] = uint64(lo), uint64(hi)
}

// ---------------------------------------------------------------------------
// Flat[int64]: two words, kind and value.

// flatInt64Raw is the raw encoding of FlatLattice[int64]. The value word is
// zero unless the kind is FlatVal, keeping the encoding canonical.
type flatInt64Raw struct{}

func (flatInt64Raw) RawWords() int { return 2 }

func (flatInt64Raw) RawEncode(dst []uint64, d Flat[int64]) {
	dst[0] = uint64(d.Kind)
	if d.Kind == FlatVal {
		dst[1] = uint64(d.V)
	} else {
		dst[1] = 0
	}
}

func (flatInt64Raw) RawDecode(src []uint64) Flat[int64] {
	if FlatKind(src[0]) == FlatVal {
		return Flat[int64]{Kind: FlatVal, V: int64(src[1])}
	}
	return Flat[int64]{Kind: FlatKind(src[0])}
}

func (flatInt64Raw) RawBottom(dst []uint64) { dst[0], dst[1] = 0, 0 }

func (flatInt64Raw) RawLeq(a, b []uint64) bool {
	switch {
	case FlatKind(a[0]) == FlatBot || FlatKind(b[0]) == FlatTop:
		return true
	case FlatKind(a[0]) == FlatTop || FlatKind(b[0]) == FlatBot:
		return false
	default:
		return a[1] == b[1]
	}
}

func (flatInt64Raw) RawEq(a, b []uint64) bool { return a[0] == b[0] && a[1] == b[1] }

func (flatInt64Raw) RawJoin(dst, a, b []uint64) {
	switch {
	case FlatKind(a[0]) == FlatBot:
		dst[0], dst[1] = b[0], b[1]
	case FlatKind(b[0]) == FlatBot:
		dst[0], dst[1] = a[0], a[1]
	case FlatKind(a[0]) == FlatVal && FlatKind(b[0]) == FlatVal && a[1] == b[1]:
		dst[0], dst[1] = a[0], a[1]
	default:
		dst[0], dst[1] = uint64(FlatTop), 0
	}
}

func (flatInt64Raw) RawMeet(dst, a, b []uint64) {
	switch {
	case FlatKind(a[0]) == FlatTop:
		dst[0], dst[1] = b[0], b[1]
	case FlatKind(b[0]) == FlatTop:
		dst[0], dst[1] = a[0], a[1]
	case FlatKind(a[0]) == FlatVal && FlatKind(b[0]) == FlatVal && a[1] == b[1]:
		dst[0], dst[1] = a[0], a[1]
	default:
		dst[0], dst[1] = uint64(FlatBot), 0
	}
}

func (r flatInt64Raw) RawWiden(dst, a, b []uint64) { r.RawJoin(dst, a, b) }

func (flatInt64Raw) RawNarrow(dst, a, b []uint64) { dst[0], dst[1] = b[0], b[1] }

// ---------------------------------------------------------------------------
// Sign and Parity: one word holding the bitset.

// RawWords implements Raw.
func (SignLattice) RawWords() int { return 1 }

// RawEncode implements Raw.
func (SignLattice) RawEncode(dst []uint64, d Sign) { dst[0] = uint64(d) }

// RawDecode implements Raw.
func (SignLattice) RawDecode(src []uint64) Sign { return Sign(src[0]) }

// RawBottom implements Raw.
func (SignLattice) RawBottom(dst []uint64) { dst[0] = 0 }

// RawLeq implements Raw.
func (SignLattice) RawLeq(a, b []uint64) bool { return a[0]&^b[0] == 0 }

// RawEq implements Raw.
func (SignLattice) RawEq(a, b []uint64) bool { return a[0] == b[0] }

// RawJoin implements Raw.
func (SignLattice) RawJoin(dst, a, b []uint64) { dst[0] = a[0] | b[0] }

// RawMeet implements Raw.
func (SignLattice) RawMeet(dst, a, b []uint64) { dst[0] = a[0] & b[0] }

// RawWiden implements Raw (finite height: Widen = Join).
func (SignLattice) RawWiden(dst, a, b []uint64) { dst[0] = a[0] | b[0] }

// RawNarrow implements Raw (Narrow = b).
func (SignLattice) RawNarrow(dst, a, b []uint64) { dst[0] = b[0] }

// RawWords implements Raw.
func (ParityLattice) RawWords() int { return 1 }

// RawEncode implements Raw.
func (ParityLattice) RawEncode(dst []uint64, d Parity) { dst[0] = uint64(d) }

// RawDecode implements Raw.
func (ParityLattice) RawDecode(src []uint64) Parity { return Parity(src[0]) }

// RawBottom implements Raw.
func (ParityLattice) RawBottom(dst []uint64) { dst[0] = 0 }

// RawLeq implements Raw.
func (ParityLattice) RawLeq(a, b []uint64) bool { return a[0]&^b[0] == 0 }

// RawEq implements Raw.
func (ParityLattice) RawEq(a, b []uint64) bool { return a[0] == b[0] }

// RawJoin implements Raw.
func (ParityLattice) RawJoin(dst, a, b []uint64) { dst[0] = a[0] | b[0] }

// RawMeet implements Raw.
func (ParityLattice) RawMeet(dst, a, b []uint64) { dst[0] = a[0] & b[0] }

// RawWiden implements Raw (finite height: Widen = Join).
func (ParityLattice) RawWiden(dst, a, b []uint64) { dst[0] = a[0] | b[0] }

// RawNarrow implements Raw (Narrow = b).
func (ParityLattice) RawNarrow(dst, a, b []uint64) { dst[0] = b[0] }

// ---------------------------------------------------------------------------
// Set[T]: a bitset over the universe, ⌈|universe|/64⌉ words.

// RawWords implements Raw.
func (l *SetLattice[T]) RawWords() int { return (len(l.universe) + 63) / 64 }

// rawOK vetoes instances without a universe: the bitset needs a fixed,
// finite element-to-bit mapping. Lattices built by NewSetLattice always
// carry the index; zero-valued instances never do.
func (l *SetLattice[T]) rawOK() bool {
	return l != nil && len(l.universe) > 0 && l.elemIdx != nil
}

// RawEncode implements Raw. It panics on elements outside the universe —
// such sets are not elements of this lattice instance (Top would not bound
// them).
func (l *SetLattice[T]) RawEncode(dst []uint64, d Set[T]) {
	for i := range dst {
		dst[i] = 0
	}
	for e := range d.m {
		i, ok := l.elemIdx[e]
		if !ok {
			panic(fmt.Sprintf("lattice: set element %v is outside the lattice universe", e))
		}
		dst[i>>6] |= uint64(1) << uint(i&63)
	}
}

// RawDecode implements Raw.
func (l *SetLattice[T]) RawDecode(src []uint64) Set[T] {
	var elems []T
	for i, e := range l.universe {
		if src[i>>6]&(uint64(1)<<uint(i&63)) != 0 {
			elems = append(elems, e)
		}
	}
	return NewSet(elems...)
}

// RawBottom implements Raw.
func (l *SetLattice[T]) RawBottom(dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
}

// RawLeq implements Raw: inclusion is a ⊆ b, i.e. a AND-NOT b is empty.
func (l *SetLattice[T]) RawLeq(a, b []uint64) bool {
	for i := range a {
		if a[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

// RawEq implements Raw.
func (l *SetLattice[T]) RawEq(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RawJoin implements Raw: union.
func (l *SetLattice[T]) RawJoin(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] | b[i]
	}
}

// RawMeet implements Raw: intersection.
func (l *SetLattice[T]) RawMeet(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// RawWiden implements Raw (finite universe: Widen = Join).
func (l *SetLattice[T]) RawWiden(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] | b[i]
	}
}

// RawNarrow implements Raw (Narrow = b).
func (l *SetLattice[T]) RawNarrow(dst, a, b []uint64) {
	copy(dst, b)
}
