package lattice

import (
	"fmt"
	"sort"
	"strings"
)

// Set is an immutable finite set of comparable elements, an element of the
// powerset lattice ordered by inclusion. The zero value is the empty set.
// Sets are used by the points-to analysis and as context components.
type Set[T comparable] struct {
	m map[T]struct{}
}

// NewSet returns the set containing the given elements.
func NewSet[T comparable](elems ...T) Set[T] {
	if len(elems) == 0 {
		return Set[T]{}
	}
	m := make(map[T]struct{}, len(elems))
	for _, e := range elems {
		m[e] = struct{}{}
	}
	return Set[T]{m: m}
}

// Len returns the number of elements.
func (s Set[T]) Len() int { return len(s.m) }

// Has reports membership of e.
func (s Set[T]) Has(e T) bool {
	_, ok := s.m[e]
	return ok
}

// Elems returns the elements in unspecified order.
func (s Set[T]) Elems() []T {
	out := make([]T, 0, len(s.m))
	for e := range s.m {
		out = append(out, e)
	}
	return out
}

// Union returns s ∪ o.
func (s Set[T]) Union(o Set[T]) Set[T] {
	if len(s.m) == 0 {
		return o
	}
	if len(o.m) == 0 {
		return s
	}
	m := make(map[T]struct{}, len(s.m)+len(o.m))
	for e := range s.m {
		m[e] = struct{}{}
	}
	for e := range o.m {
		m[e] = struct{}{}
	}
	return Set[T]{m: m}
}

// Intersect returns s ∩ o.
func (s Set[T]) Intersect(o Set[T]) Set[T] {
	m := make(map[T]struct{})
	small, big := s.m, o.m
	if len(big) < len(small) {
		small, big = big, small
	}
	for e := range small {
		if _, ok := big[e]; ok {
			m[e] = struct{}{}
		}
	}
	if len(m) == 0 {
		return Set[T]{}
	}
	return Set[T]{m: m}
}

// Subset reports s ⊆ o.
func (s Set[T]) Subset(o Set[T]) bool {
	if len(s.m) > len(o.m) {
		return false
	}
	for e := range s.m {
		if _, ok := o.m[e]; !ok {
			return false
		}
	}
	return true
}

// Key returns a deterministic string identifying the set's contents, usable
// as a comparable context component.
func (s Set[T]) Key() string {
	parts := make([]string, 0, len(s.m))
	for e := range s.m {
		parts = append(parts, fmt.Sprintf("%v", e))
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// SetLattice is the powerset lattice over T ordered by inclusion. Top is
// not representable for an unbounded universe; Top panics unless the
// lattice was built with a universe via NewSetLattice.
type SetLattice[T comparable] struct {
	universe []T
	// elemIdx maps each universe element to its position (first occurrence
	// wins), fixing the bit layout of the raw bitset encoding (raw.go). It
	// is built eagerly so concurrent solvers never race on it.
	elemIdx map[T]int
}

// NewSetLattice returns a powerset lattice whose Top is the given universe.
func NewSetLattice[T comparable](universe ...T) *SetLattice[T] {
	l := &SetLattice[T]{universe: append([]T(nil), universe...)}
	l.elemIdx = make(map[T]int, len(l.universe))
	for i, e := range l.universe {
		if _, ok := l.elemIdx[e]; !ok {
			l.elemIdx[e] = i
		}
	}
	return l
}

// Bottom returns the empty set.
func (*SetLattice[T]) Bottom() Set[T] { return Set[T]{} }

// Top returns the universe; it panics if none was supplied.
func (l *SetLattice[T]) Top() Set[T] {
	if l == nil || l.universe == nil {
		panic("lattice: SetLattice.Top without a universe")
	}
	return NewSet(l.universe...)
}

// Leq reports inclusion.
func (*SetLattice[T]) Leq(a, b Set[T]) bool { return a.Subset(b) }

// Eq reports set equality.
func (*SetLattice[T]) Eq(a, b Set[T]) bool { return a.Len() == b.Len() && a.Subset(b) }

// Join returns the union.
func (*SetLattice[T]) Join(a, b Set[T]) Set[T] { return a.Union(b) }

// Meet returns the intersection.
func (*SetLattice[T]) Meet(a, b Set[T]) Set[T] { return a.Intersect(b) }

// Widen joins; sound as widening only for finite universes (finite
// ascending chains). Points-to universes are finite per program.
func (*SetLattice[T]) Widen(a, b Set[T]) Set[T] { return a.Union(b) }

// Narrow returns b.
func (*SetLattice[T]) Narrow(a, b Set[T]) Set[T] { return b }

// Format renders a set with sorted element strings.
func (*SetLattice[T]) Format(a Set[T]) string { return a.Key() }
