package lattice

// Sign is an element of the sign domain: the classic five-point lattice
//
//	    ⊤
//	  / | \
//	Neg Zero Pos
//	  \ | /
//	    ⊥
//
// extended with the convex unions Neg∪Zero (≤0) and Zero∪Pos (≥0), making
// it the eight-element lattice of sign sets closed under convexity. It is
// used by tests and examples as a second numeric domain alongside
// intervals, and by the bucket context policy.
type Sign uint8

// Sign elements are bitsets over {neg, zero, pos}.
const (
	SignBot  Sign = 0
	SignNeg  Sign = 1
	SignZero Sign = 2
	SignPos  Sign = 4
	SignLe0  Sign = SignNeg | SignZero
	SignGe0  Sign = SignZero | SignPos
	SignNe0  Sign = SignNeg | SignPos
	SignTop  Sign = SignNeg | SignZero | SignPos
)

// SignOf abstracts a concrete integer.
func SignOf(v int64) Sign {
	switch {
	case v < 0:
		return SignNeg
	case v == 0:
		return SignZero
	default:
		return SignPos
	}
}

// SignOfInterval abstracts an interval.
func SignOfInterval(iv Interval) Sign {
	if iv.IsEmpty() {
		return SignBot
	}
	var s Sign
	if iv.Lo.Less(Fin(0)) {
		s |= SignNeg
	}
	if iv.Contains(0) {
		s |= SignZero
	}
	if Fin(0).Less(iv.Hi) {
		s |= SignPos
	}
	return s
}

// String renders the sign set.
func (s Sign) String() string {
	switch s {
	case SignBot:
		return "⊥"
	case SignNeg:
		return "-"
	case SignZero:
		return "0"
	case SignPos:
		return "+"
	case SignLe0:
		return "≤0"
	case SignGe0:
		return "≥0"
	case SignNe0:
		return "≠0"
	case SignTop:
		return "⊤"
	default:
		return "?"
	}
}

// Contains reports whether the concrete value v is described by s.
func (s Sign) Contains(v int64) bool { return SignOf(v)&s != 0 }

// SignLattice is the sign lattice; its height is 3, so Widen = Join.
type SignLattice struct{}

// Signs is the lattice instance.
var Signs = SignLattice{}

// Bottom returns ⊥.
func (SignLattice) Bottom() Sign { return SignBot }

// Top returns ⊤.
func (SignLattice) Top() Sign { return SignTop }

// Leq is bitset inclusion.
func (SignLattice) Leq(a, b Sign) bool { return a&^b == 0 }

// Eq is equality.
func (SignLattice) Eq(a, b Sign) bool { return a == b }

// Join is bitset union.
func (SignLattice) Join(a, b Sign) Sign { return a | b }

// Meet is bitset intersection.
func (SignLattice) Meet(a, b Sign) Sign { return a & b }

// Widen joins (finite height).
func (SignLattice) Widen(a, b Sign) Sign { return a | b }

// Narrow returns b.
func (SignLattice) Narrow(a, b Sign) Sign { return b }

// Format renders an element.
func (SignLattice) Format(a Sign) string { return a.String() }

// Arithmetic transfer functions on signs.

// Neg flips the sign.
func (s Sign) Neg() Sign {
	var out Sign
	if s&SignNeg != 0 {
		out |= SignPos
	}
	if s&SignZero != 0 {
		out |= SignZero
	}
	if s&SignPos != 0 {
		out |= SignNeg
	}
	return out
}

// Add is the abstract sum.
func (s Sign) Add(o Sign) Sign {
	if s == SignBot || o == SignBot {
		return SignBot
	}
	var out Sign
	for _, a := range [3]Sign{SignNeg, SignZero, SignPos} {
		if s&a == 0 {
			continue
		}
		for _, b := range [3]Sign{SignNeg, SignZero, SignPos} {
			if o&b == 0 {
				continue
			}
			switch {
			case a == SignZero:
				out |= b
			case b == SignZero:
				out |= a
			case a == b:
				out |= a
			default:
				out |= SignTop // pos + neg: any sign
			}
		}
	}
	return out
}

// Mul is the abstract product.
func (s Sign) Mul(o Sign) Sign {
	if s == SignBot || o == SignBot {
		return SignBot
	}
	var out Sign
	for _, a := range [3]Sign{SignNeg, SignZero, SignPos} {
		if s&a == 0 {
			continue
		}
		for _, b := range [3]Sign{SignNeg, SignZero, SignPos} {
			if o&b == 0 {
				continue
			}
			switch {
			case a == SignZero || b == SignZero:
				out |= SignZero
			case a == b:
				out |= SignPos
			default:
				out |= SignNeg
			}
		}
	}
	return out
}
