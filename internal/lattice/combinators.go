package lattice

import (
	"fmt"
	"sort"
	"strings"
)

// Pair is an element of the product lattice A × B.
type Pair[A, B any] struct {
	Fst A
	Snd B
}

// PairLattice is the product of two lattices with componentwise order and
// operators.
type PairLattice[A, B any] struct {
	A Lattice[A]
	B Lattice[B]
}

// NewPairLattice returns the product lattice of a and b.
func NewPairLattice[A, B any](a Lattice[A], b Lattice[B]) *PairLattice[A, B] {
	return &PairLattice[A, B]{A: a, B: b}
}

// Bottom returns (⊥, ⊥).
func (l *PairLattice[A, B]) Bottom() Pair[A, B] {
	return Pair[A, B]{l.A.Bottom(), l.B.Bottom()}
}

// Top returns (⊤, ⊤).
func (l *PairLattice[A, B]) Top() Pair[A, B] {
	return Pair[A, B]{l.A.Top(), l.B.Top()}
}

// Leq reports componentwise order.
func (l *PairLattice[A, B]) Leq(a, b Pair[A, B]) bool {
	return l.A.Leq(a.Fst, b.Fst) && l.B.Leq(a.Snd, b.Snd)
}

// Eq reports componentwise equality.
func (l *PairLattice[A, B]) Eq(a, b Pair[A, B]) bool {
	return l.A.Eq(a.Fst, b.Fst) && l.B.Eq(a.Snd, b.Snd)
}

// Join joins componentwise.
func (l *PairLattice[A, B]) Join(a, b Pair[A, B]) Pair[A, B] {
	return Pair[A, B]{l.A.Join(a.Fst, b.Fst), l.B.Join(a.Snd, b.Snd)}
}

// Meet meets componentwise.
func (l *PairLattice[A, B]) Meet(a, b Pair[A, B]) Pair[A, B] {
	return Pair[A, B]{l.A.Meet(a.Fst, b.Fst), l.B.Meet(a.Snd, b.Snd)}
}

// Widen widens componentwise.
func (l *PairLattice[A, B]) Widen(a, b Pair[A, B]) Pair[A, B] {
	return Pair[A, B]{l.A.Widen(a.Fst, b.Fst), l.B.Widen(a.Snd, b.Snd)}
}

// Narrow narrows componentwise.
func (l *PairLattice[A, B]) Narrow(a, b Pair[A, B]) Pair[A, B] {
	return Pair[A, B]{l.A.Narrow(a.Fst, b.Fst), l.B.Narrow(a.Snd, b.Snd)}
}

// Format renders a pair.
func (l *PairLattice[A, B]) Format(a Pair[A, B]) string {
	return "(" + l.A.Format(a.Fst) + ", " + l.B.Format(a.Snd) + ")"
}

// Lifted adds a fresh bottom element beneath a lattice; useful to
// distinguish "unreachable" from the inner lattice's own least element.
type Lifted[D any] struct {
	// Bot marks the added bottom; if false, V is the inner element.
	Bot bool
	V   D
}

// LiftOf wraps an inner element.
func LiftOf[D any](v D) Lifted[D] { return Lifted[D]{V: v} }

// LiftLattice lifts an inner lattice with a new bottom.
type LiftLattice[D any] struct {
	Inner Lattice[D]
}

// NewLiftLattice returns the lift of inner.
func NewLiftLattice[D any](inner Lattice[D]) *LiftLattice[D] {
	return &LiftLattice[D]{Inner: inner}
}

// Bottom returns the added bottom.
func (*LiftLattice[D]) Bottom() Lifted[D] { return Lifted[D]{Bot: true} }

// Top returns the inner top.
func (l *LiftLattice[D]) Top() Lifted[D] { return LiftOf(l.Inner.Top()) }

// Leq reports the lifted order.
func (l *LiftLattice[D]) Leq(a, b Lifted[D]) bool {
	if a.Bot {
		return true
	}
	if b.Bot {
		return false
	}
	return l.Inner.Leq(a.V, b.V)
}

// Eq reports lifted equality.
func (l *LiftLattice[D]) Eq(a, b Lifted[D]) bool {
	if a.Bot || b.Bot {
		return a.Bot == b.Bot
	}
	return l.Inner.Eq(a.V, b.V)
}

// Join joins, treating the added bottom as neutral.
func (l *LiftLattice[D]) Join(a, b Lifted[D]) Lifted[D] {
	if a.Bot {
		return b
	}
	if b.Bot {
		return a
	}
	return LiftOf(l.Inner.Join(a.V, b.V))
}

// Meet meets; the added bottom absorbs.
func (l *LiftLattice[D]) Meet(a, b Lifted[D]) Lifted[D] {
	if a.Bot || b.Bot {
		return Lifted[D]{Bot: true}
	}
	return LiftOf(l.Inner.Meet(a.V, b.V))
}

// Widen widens, treating the added bottom as neutral.
func (l *LiftLattice[D]) Widen(a, b Lifted[D]) Lifted[D] {
	if a.Bot {
		return b
	}
	if b.Bot {
		return a
	}
	return LiftOf(l.Inner.Widen(a.V, b.V))
}

// Narrow narrows; requires b ⊑ a.
func (l *LiftLattice[D]) Narrow(a, b Lifted[D]) Lifted[D] {
	if a.Bot || b.Bot {
		return b
	}
	return LiftOf(l.Inner.Narrow(a.V, b.V))
}

// Format renders a lifted element.
func (l *LiftLattice[D]) Format(a Lifted[D]) string {
	if a.Bot {
		return "⊥⊥"
	}
	return l.Inner.Format(a.V)
}

// MapLattice lifts a value lattice pointwise to finite-support maps from K:
// a map element assigns the Default (normally the inner bottom) to every key
// it does not mention. Top is representable only if top equals the default,
// otherwise Top panics.
type MapLattice[K comparable, D any] struct {
	Inner   Lattice[D]
	Default D
}

// NewMapLattice returns the pointwise lift of inner with inner.Bottom() as
// the default.
func NewMapLattice[K comparable, D any](inner Lattice[D]) *MapLattice[K, D] {
	return &MapLattice[K, D]{Inner: inner, Default: inner.Bottom()}
}

// Get returns the binding of k, or the default.
func (l *MapLattice[K, D]) Get(m map[K]D, k K) D {
	if v, ok := m[k]; ok {
		return v
	}
	return l.Default
}

// Set returns a copy of m with k bound to v. Bindings equal to the default
// are kept explicit only if already present; fresh default bindings are
// dropped to keep maps small.
func (l *MapLattice[K, D]) Set(m map[K]D, k K, v D) map[K]D {
	out := make(map[K]D, len(m)+1)
	for key, val := range m {
		out[key] = val
	}
	if _, present := out[k]; !present && l.Inner.Eq(v, l.Default) {
		return out
	}
	out[k] = v
	return out
}

// Bottom returns the empty map (everything default).
func (*MapLattice[K, D]) Bottom() map[K]D { return nil }

// Top panics unless the inner top equals the default.
func (l *MapLattice[K, D]) Top() map[K]D {
	if l.Inner.Eq(l.Inner.Top(), l.Default) {
		return nil
	}
	panic("lattice: MapLattice.Top is not representable")
}

// Leq reports pointwise order.
func (l *MapLattice[K, D]) Leq(a, b map[K]D) bool {
	for k, av := range a {
		if !l.Inner.Leq(av, l.Get(b, k)) {
			return false
		}
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			if !l.Inner.Leq(l.Default, bv) {
				return false
			}
		}
	}
	return true
}

// Eq reports pointwise equality.
func (l *MapLattice[K, D]) Eq(a, b map[K]D) bool {
	for k, av := range a {
		if !l.Inner.Eq(av, l.Get(b, k)) {
			return false
		}
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			if !l.Inner.Eq(l.Default, bv) {
				return false
			}
		}
	}
	return true
}

// combine merges a and b pointwise with op.
func (l *MapLattice[K, D]) combine(a, b map[K]D, op func(x, y D) D) map[K]D {
	out := make(map[K]D, len(a)+len(b))
	for k, av := range a {
		out[k] = op(av, l.Get(b, k))
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			out[k] = op(l.Default, bv)
		}
	}
	return out
}

// Join joins pointwise.
func (l *MapLattice[K, D]) Join(a, b map[K]D) map[K]D {
	return l.combine(a, b, l.Inner.Join)
}

// Meet meets pointwise.
func (l *MapLattice[K, D]) Meet(a, b map[K]D) map[K]D {
	return l.combine(a, b, l.Inner.Meet)
}

// Widen widens pointwise.
func (l *MapLattice[K, D]) Widen(a, b map[K]D) map[K]D {
	return l.combine(a, b, l.Inner.Widen)
}

// Narrow narrows pointwise; requires b ⊑ a.
func (l *MapLattice[K, D]) Narrow(a, b map[K]D) map[K]D {
	return l.combine(a, b, l.Inner.Narrow)
}

// Format renders a map with sorted keys.
func (l *MapLattice[K, D]) Format(a map[K]D) string {
	parts := make([]string, 0, len(a))
	for k, v := range a {
		parts = append(parts, fmt.Sprintf("%v↦%s", k, l.Inner.Format(v)))
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}
