package lattice

import "fmt"

// FlatKind distinguishes the three layers of a flat lattice.
type FlatKind int8

// Layers of Flat.
const (
	FlatBot FlatKind = iota // no information computed yet
	FlatVal                 // exactly the wrapped value
	FlatTop                 // conflicting values
)

// Flat is an element of the flat lattice over T: ⊥ below all values of T,
// which are pairwise incomparable, below ⊤. The classic constant-propagation
// domain.
type Flat[T comparable] struct {
	Kind FlatKind
	V    T
}

// FlatOf returns the middle-layer element for v.
func FlatOf[T comparable](v T) Flat[T] { return Flat[T]{Kind: FlatVal, V: v} }

// FlatLattice is the flat lattice over a comparable value type.
type FlatLattice[T comparable] struct{}

// Bottom returns ⊥.
func (FlatLattice[T]) Bottom() Flat[T] { return Flat[T]{Kind: FlatBot} }

// Top returns ⊤.
func (FlatLattice[T]) Top() Flat[T] { return Flat[T]{Kind: FlatTop} }

// Leq reports the flat order.
func (FlatLattice[T]) Leq(a, b Flat[T]) bool {
	switch {
	case a.Kind == FlatBot || b.Kind == FlatTop:
		return true
	case a.Kind == FlatTop || b.Kind == FlatBot:
		return false
	default:
		return a.V == b.V
	}
}

// Eq reports equality.
func (FlatLattice[T]) Eq(a, b Flat[T]) bool {
	if a.Kind != b.Kind {
		return false
	}
	return a.Kind != FlatVal || a.V == b.V
}

// Join returns the least upper bound.
func (l FlatLattice[T]) Join(a, b Flat[T]) Flat[T] {
	switch {
	case a.Kind == FlatBot:
		return b
	case b.Kind == FlatBot:
		return a
	case a.Kind == FlatVal && b.Kind == FlatVal && a.V == b.V:
		return a
	default:
		return l.Top()
	}
}

// Meet returns the greatest lower bound.
func (l FlatLattice[T]) Meet(a, b Flat[T]) Flat[T] {
	switch {
	case a.Kind == FlatTop:
		return b
	case b.Kind == FlatTop:
		return a
	case a.Kind == FlatVal && b.Kind == FlatVal && a.V == b.V:
		return a
	default:
		return l.Bottom()
	}
}

// Widen joins; the flat lattice has height 2, so no acceleration is needed.
func (l FlatLattice[T]) Widen(a, b Flat[T]) Flat[T] { return l.Join(a, b) }

// Narrow returns b, the most precise legal narrowing.
func (FlatLattice[T]) Narrow(a, b Flat[T]) Flat[T] { return b }

// Format renders an element.
func (FlatLattice[T]) Format(a Flat[T]) string {
	switch a.Kind {
	case FlatBot:
		return "⊥"
	case FlatTop:
		return "⊤"
	default:
		return fmt.Sprintf("%v", a.V)
	}
}
