// Command eqsolve solves a textual system of equations (see internal/eqdsl
// for the format) with a chosen solver and update operator — a workbench
// for experimenting with the paper's solver/operator matrix:
//
//	eqsolve -solver rr  -op warrow examples/systems/example1.eq   # diverges
//	eqsolve -solver srr -op warrow examples/systems/example1.eq   # terminates
//	eqsolve -solver sw  -op warrow examples/systems/loop.eq
//	eqsolve -solver slr -op warrow -query e examples/systems/loop.eq
//	eqsolve -solver sw  -op warrow -certify examples/systems/loop.eq
//
// Divergent workloads can be bounded and recovered from:
//
//	eqsolve -solver rr -op warrow -timeout 100ms examples/systems/example1.eq  # deadline abort
//	eqsolve -solver rr -op warrow -max-flips 8   examples/systems/example1.eq  # watchdog abort
//	eqsolve -solver rr -op warrow -max-flips 8 -escalate examples/systems/example1.eq
//
// With -escalate a diverging generic solver (rr, w) reruns its workload on
// the terminating structured variant (srr, sw) and exits 0 when the rerun
// succeeds.
package main

import (
	"flag"
	"fmt"
	"os"

	"warrow/internal/certify"
	"warrow/internal/eqdsl"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

func main() {
	solverFlag := flag.String("solver", "sw", "solver: rr, w, srr, sw, psw, or slr")
	opFlag := flag.String("op", "warrow", "operator: join, widen, narrow, warrow, or replace")
	query := flag.String("query", "", "with -solver slr: the unknown to solve for (default: last defined)")
	maxEvals := flag.Int("max-evals", 100000, "evaluation budget (0 = unbounded)")
	workers := flag.Int("workers", 0, "with -solver psw: worker-pool size (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "wall-clock bound for the solve (0 = unbounded)")
	maxFlips := flag.Int("max-flips", 0, "abort once any unknown alternates narrow→widen this often (0 = off)")
	escalateFlag := flag.Bool("escalate", false, "on rr/w divergence, rerun on the structured variant (srr/sw)")
	certifyFlag := flag.Bool("certify", false, "re-check the result as a post-solution (Lemma 1) and fail if it is not")
	flag.Parse()

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "eqsolve:", err)
		os.Exit(1)
	}
	f, err := eqdsl.Parse(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "eqsolve:", err)
		os.Exit(1)
	}
	cfg := solver.Config{MaxEvals: *maxEvals, Workers: *workers, Timeout: *timeout, MaxFlips: *maxFlips}
	switch f.Domain {
	case eqdsl.DomainNatInf:
		sys, err := f.NatSystem()
		if err != nil {
			fatal(err)
		}
		run(f, sys, lattice.NatInf, *solverFlag, *opFlag, *query,
			func(string) lattice.Nat { return lattice.NatOf(0) }, cfg, *certifyFlag, *escalateFlag)
	case eqdsl.DomainInterval:
		sys, err := f.IntervalSystem()
		if err != nil {
			fatal(err)
		}
		run(f, sys, lattice.Ints, *solverFlag, *opFlag, *query,
			func(string) lattice.Interval { return lattice.EmptyInterval }, cfg, *certifyFlag, *escalateFlag)
	}
}

// escalation maps each generic solver to the structured variant that
// terminates with ⊟ where the generic one may diverge (paper Thms. 2 and 4).
var escalation = map[string]string{"rr": "srr", "w": "sw"}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eqsolve:", err)
	os.Exit(1)
}

// run dispatches on solver and operator names for a concrete domain.
func run[D any](f *eqdsl.File, sys *eqn.System[string, D], l lattice.Lattice[D],
	solverName, opName, query string, init func(string) D, cfg solver.Config, check, escalate bool) {

	var combine solver.Combine[D]
	switch opName {
	case "join":
		combine = solver.Join(l)
	case "widen":
		combine = solver.Widen(l)
	case "narrow":
		combine = solver.Narrow(l)
	case "warrow":
		combine = solver.Warrow(l)
	case "replace":
		combine = solver.Replace[D]()
	default:
		fatal(fmt.Errorf("unknown operator %q", opName))
	}
	op := solver.Op[string](combine)

	solveOnce := func(name string) (map[string]D, solver.Stats, error) {
		switch name {
		case "rr":
			return solver.RR(sys, l, op, init, cfg)
		case "w":
			return solver.W(sys, l, op, init, cfg)
		case "srr":
			return solver.SRR(sys, l, op, init, cfg)
		case "sw":
			return solver.SW(sys, l, op, init, cfg)
		case "psw":
			return solver.PSW(sys, l, op, init, cfg)
		case "slr":
			if query == "" {
				query = f.Order[len(f.Order)-1]
			}
			res, err := solver.SLR(sys.AsPure(), l, op, init, query, cfg)
			return res.Values, res.Stats, err
		default:
			fatal(fmt.Errorf("unknown solver %q", name))
			panic("unreachable")
		}
	}

	used := solverName
	sigma, st, err := solveOnce(solverName)
	if err != nil {
		fmt.Printf("%s with %s: %v after %d evaluations (partial state below)\n",
			solverName, opName, err, st.Evals)
		if target := escalation[solverName]; escalate && target != "" {
			fmt.Printf("  escalating %s → %s (the structured variant terminates where %s may diverge)\n",
				solverName, target, solverName)
			if sigma2, st2, err2 := solveOnce(target); err2 == nil {
				used, sigma, st, err = target, sigma2, st2, nil
				fmt.Printf("%s with %s: solved in %d evaluations, %d updates (escalated from %s)\n",
					target, opName, st.Evals, st.Updates, solverName)
			} else {
				fmt.Printf("  escalation to %s also aborted: %v\n", target, err2)
			}
		}
	} else {
		fmt.Printf("%s with %s: solved in %d evaluations, %d updates\n",
			solverName, opName, st.Evals, st.Updates)
	}
	if used == "psw" {
		fmt.Printf("  parallel: %d workers, %d strata over %d SCCs\n",
			st.Workers, st.Strata, st.SCCs)
	}
	for _, x := range f.Order {
		if v, ok := sigma[x]; ok {
			fmt.Printf("  %-8s = %s\n", x, l.Format(v))
		}
	}
	if err != nil {
		os.Exit(1)
	}
	if check {
		// SLR returns a partial assignment closed under dependences; the
		// global solvers cover the whole system.
		var rep certify.Report[string, D]
		if used == "slr" {
			rep = certify.Partial(l, sys.AsPure(), sigma, init)
		} else {
			rep = certify.System(l, sys, sigma, init)
		}
		fmt.Printf("  certify: %s\n", rep)
		if !rep.OK() {
			os.Exit(1)
		}
	}
}
