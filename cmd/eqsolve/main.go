// Command eqsolve solves a textual system of equations (see internal/eqdsl
// for the format) with a chosen solver and update operator — a workbench
// for experimenting with the paper's solver/operator matrix:
//
//	eqsolve -solver rr  -op warrow examples/systems/example1.eq   # diverges
//	eqsolve -solver srr -op warrow examples/systems/example1.eq   # terminates
//	eqsolve -solver sw  -op warrow examples/systems/loop.eq
//	eqsolve -solver slr -op warrow -query e examples/systems/loop.eq
//	eqsolve -solver sw  -op warrow -certify examples/systems/loop.eq
package main

import (
	"flag"
	"fmt"
	"os"

	"warrow/internal/certify"
	"warrow/internal/eqdsl"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

func main() {
	solverFlag := flag.String("solver", "sw", "solver: rr, w, srr, sw, psw, or slr")
	opFlag := flag.String("op", "warrow", "operator: join, widen, narrow, warrow, or replace")
	query := flag.String("query", "", "with -solver slr: the unknown to solve for (default: last defined)")
	maxEvals := flag.Int("max-evals", 100000, "evaluation budget (0 = unbounded)")
	workers := flag.Int("workers", 0, "with -solver psw: worker-pool size (0 = GOMAXPROCS)")
	certifyFlag := flag.Bool("certify", false, "re-check the result as a post-solution (Lemma 1) and fail if it is not")
	flag.Parse()

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "eqsolve:", err)
		os.Exit(1)
	}
	f, err := eqdsl.Parse(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "eqsolve:", err)
		os.Exit(1)
	}
	cfg := solver.Config{MaxEvals: *maxEvals, Workers: *workers}
	switch f.Domain {
	case eqdsl.DomainNatInf:
		sys, err := f.NatSystem()
		if err != nil {
			fatal(err)
		}
		run(f, sys, lattice.NatInf, *solverFlag, *opFlag, *query,
			func(string) lattice.Nat { return lattice.NatOf(0) }, cfg, *certifyFlag)
	case eqdsl.DomainInterval:
		sys, err := f.IntervalSystem()
		if err != nil {
			fatal(err)
		}
		run(f, sys, lattice.Ints, *solverFlag, *opFlag, *query,
			func(string) lattice.Interval { return lattice.EmptyInterval }, cfg, *certifyFlag)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eqsolve:", err)
	os.Exit(1)
}

// run dispatches on solver and operator names for a concrete domain.
func run[D any](f *eqdsl.File, sys *eqn.System[string, D], l lattice.Lattice[D],
	solverName, opName, query string, init func(string) D, cfg solver.Config, check bool) {

	var combine solver.Combine[D]
	switch opName {
	case "join":
		combine = solver.Join(l)
	case "widen":
		combine = solver.Widen(l)
	case "narrow":
		combine = solver.Narrow(l)
	case "warrow":
		combine = solver.Warrow(l)
	case "replace":
		combine = solver.Replace[D]()
	default:
		fatal(fmt.Errorf("unknown operator %q", opName))
	}
	op := solver.Op[string](combine)

	var sigma map[string]D
	var st solver.Stats
	var err error
	switch solverName {
	case "rr":
		sigma, st, err = solver.RR(sys, l, op, init, cfg)
	case "w":
		sigma, st, err = solver.W(sys, l, op, init, cfg)
	case "srr":
		sigma, st, err = solver.SRR(sys, l, op, init, cfg)
	case "sw":
		sigma, st, err = solver.SW(sys, l, op, init, cfg)
	case "psw":
		sigma, st, err = solver.PSW(sys, l, op, init, cfg)
	case "slr":
		if query == "" {
			query = f.Order[len(f.Order)-1]
		}
		var res solver.Result[string, D]
		res, err = solver.SLR(sys.AsPure(), l, op, init, query, cfg)
		sigma, st = res.Values, res.Stats
	default:
		fatal(fmt.Errorf("unknown solver %q", solverName))
	}
	if err != nil {
		fmt.Printf("%s with %s: %v after %d evaluations (partial state below)\n",
			solverName, opName, err, st.Evals)
	} else {
		fmt.Printf("%s with %s: solved in %d evaluations, %d updates\n",
			solverName, opName, st.Evals, st.Updates)
	}
	if solverName == "psw" {
		fmt.Printf("  parallel: %d workers, %d strata over %d SCCs\n",
			st.Workers, st.Strata, st.SCCs)
	}
	for _, x := range f.Order {
		if v, ok := sigma[x]; ok {
			fmt.Printf("  %-8s = %s\n", x, l.Format(v))
		}
	}
	if err != nil {
		os.Exit(1)
	}
	if check {
		// SLR returns a partial assignment closed under dependences; the
		// global solvers cover the whole system.
		var rep certify.Report[string, D]
		if solverName == "slr" {
			rep = certify.Partial(l, sys.AsPure(), sigma, init)
		} else {
			rep = certify.System(l, sys, sigma, init)
		}
		fmt.Printf("  certify: %s\n", rep)
		if !rep.OK() {
			os.Exit(1)
		}
	}
}
