// Command eqsolve solves a textual system of equations (see internal/eqdsl
// for the format) with a chosen solver and update operator — a workbench
// for experimenting with the paper's solver/operator matrix:
//
//	eqsolve -solver rr  -op warrow examples/systems/example1.eq   # diverges
//	eqsolve -solver srr -op warrow examples/systems/example1.eq   # terminates
//	eqsolve -solver sw  -op warrow examples/systems/loop.eq
//	eqsolve -solver slr -op warrow -query e examples/systems/loop.eq
//	eqsolve -solver sw  -op warrow -certify examples/systems/loop.eq
//	eqsolve -solver slr3 -certify examples/systems/loop.eq   # ∇/⊟ only at widening points
//
// The slr2/slr3/slr4 solvers apply the update operator only at widening
// points (SCC headers of the dependence graph); slr3 restarts the
// iteration below a shrinking widening point and slr4 localizes the
// restart to the point's component. Their results certify as
// post-solutions like every other solver's, but are not bit-identical
// to sw's (see internal/solver/slrx.go).
//
// Divergent workloads can be bounded and recovered from:
//
//	eqsolve -solver rr -op warrow -timeout 100ms examples/systems/example1.eq  # deadline abort
//	eqsolve -solver rr -op warrow -max-flips 8   examples/systems/example1.eq  # watchdog abort
//	eqsolve -solver rr -op warrow -max-flips 8 -escalate examples/systems/example1.eq
//
// With -escalate a diverging generic solver (rr, w) reruns its workload on
// the terminating structured variant (srr, sw) and exits 0 when the rerun
// succeeds.
//
// Aborted solves can checkpoint their state and resume later:
//
//	eqsolve -solver sw -op warrow -max-evals 5 -checkpoint /tmp/cp examples/systems/loop.eq
//	eqsolve -solver sw -op warrow -resume /tmp/cp examples/systems/loop.eq
//
// and flaky right-hand sides can be retried with -retry.
//
// Edited systems can be re-solved incrementally: -edit FILE overlays the
// definitions of a second .eq file (same domain) onto the base system —
// replacing equations that exist, adding ones that don't — and -resolve
// solves the base system once, applies the overlay, and re-solves only the
// dirty cone of the edit, reporting how many unknowns were re-solved versus
// reused (see internal/incr):
//
//	eqsolve -solver sw -edit examples/systems/loop_edit.eq examples/systems/loop.eq           # scratch solve of the edited system
//	eqsolve -solver sw -edit examples/systems/loop_edit.eq -resolve examples/systems/loop.eq  # incremental re-solve with delta stats
//
// With -connect the system is submitted to a running eqsolved daemon (see
// cmd/eqsolved) instead of solved in-process; -solver, -max-evals, -timeout,
// -max-flips, -certify, -checkpoint and -resume keep their meaning:
//
//	eqsolve -connect 127.0.0.1:7333 -solver sw -certify examples/systems/loop.eq
//	eqsolve -connect 127.0.0.1:7333 -max-evals 50 -checkpoint /tmp/cp examples/systems/loop.eq
//	eqsolve -connect 127.0.0.1:7333 -resume /tmp/cp examples/systems/loop.eq
package main

import (
	"flag"
	"fmt"
	"os"

	"warrow/internal/certify"
	"warrow/internal/ckptcodec"
	"warrow/internal/eqdsl"
	"warrow/internal/eqn"
	"warrow/internal/incr"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

func main() {
	solverFlag := flag.String("solver", "sw", "solver: rr, w, srr, sw, psw, cpw, slr, slr2, slr3, or slr4")
	opFlag := flag.String("op", "warrow", "operator: join, widen, narrow, warrow, or replace")
	query := flag.String("query", "", "with -solver slr: the unknown to solve for (default: last defined)")
	maxEvals := flag.Int("max-evals", 100000, "evaluation budget (0 = unbounded)")
	workers := flag.Int("workers", 0, "with -solver psw/cpw: worker-pool size (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "wall-clock bound for the solve (0 = unbounded)")
	maxFlips := flag.Int("max-flips", 0, "abort once any unknown alternates narrow→widen this often (0 = off)")
	escalateFlag := flag.Bool("escalate", false, "on rr/w divergence, rerun on the structured variant (srr/sw)")
	certifyFlag := flag.Bool("certify", false, "re-check the result as a post-solution (Lemma 1) and fail if it is not")
	ckptPath := flag.String("checkpoint", "", "write the solver state to this file on abort (and periodically with -checkpoint-every)")
	ckptEvery := flag.Int("checkpoint-every", 0, "with -checkpoint: also snapshot every N evaluations (0 = on abort only)")
	resumePath := flag.String("resume", "", "resume the solve from a checkpoint file written by -checkpoint")
	retry := flag.Int("retry", 0, "attempts per right-hand-side evaluation; >1 retries transient failures")
	retryBase := flag.Duration("retry-base", 0, "backoff before the second attempt, doubling per retry (0 = immediate)")
	editPath := flag.String("edit", "", "overlay the definitions of this .eq file (same domain) onto the base system")
	resolveFlag := flag.Bool("resolve", false, "with -edit: solve, apply the overlay, and incrementally re-solve its dirty cone")
	connect := flag.String("connect", "", "submit the system to an eqsolved daemon at this address instead of solving locally")
	flag.Parse()

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "eqsolve:", err)
		os.Exit(1)
	}
	f, err := eqdsl.Parse(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "eqsolve:", err)
		os.Exit(1)
	}
	if f.Open {
		fmt.Fprintln(os.Stderr, "eqsolve:", flag.Arg(0), "is an edit overlay (open); apply it to a base system with -edit")
		os.Exit(1)
	}
	cfg := solver.Config{
		MaxEvals: *maxEvals, Workers: *workers, Timeout: *timeout, MaxFlips: *maxFlips,
		Retry: solver.RetryPolicy{MaxAttempts: *retry, BaseDelay: *retryBase},
	}
	if *connect != "" {
		// Served solves run the daemon's fixed ⊟ pipeline; flags that steer
		// the local pipeline have no served counterpart.
		switch {
		case *opFlag != "warrow":
			usage("-connect always solves with -op warrow (the daemon's operator)")
		case *editPath != "" || *resolveFlag:
			usage("-connect does not support -edit/-resolve; apply edits locally")
		case *escalateFlag:
			usage("-connect does not support -escalate; pick the structured solver directly")
		case *query != "":
			usage("-connect serves the global solvers, which take no -query")
		case *ckptEvery > 0:
			usage("-connect checkpoints only on abort; -checkpoint-every is local-only")
		case *retry > 0:
			usage("-connect does not support -retry; the daemon retries nothing")
		}
		connectDispatch(*connect, f, string(data), connectCfg{
			solver:   *solverFlag,
			maxEvals: *maxEvals,
			timeout:  *timeout,
			maxFlips: *maxFlips,
		}, *certifyFlag, persistence{path: *ckptPath, resume: *resumePath})
		return
	}
	if *resolveFlag && *editPath == "" {
		usage("-resolve re-solves the dirty cone of an edit, so it needs one: pass -edit FILE.eq alongside it")
	}
	var editF *eqdsl.File
	if *editPath != "" {
		data, err := os.ReadFile(*editPath)
		if err != nil {
			fatal(err)
		}
		if editF, err = eqdsl.ParseOverlay(string(data)); err != nil {
			fatal(fmt.Errorf("edit file: %w", err))
		}
		if !editF.DeclaredOpen {
			usage(fmt.Sprintf("-edit %s: not an edit overlay — add a bare `open` line after its domain header to mark it as one", *editPath))
		}
		if editF.Domain != f.Domain {
			fatal(fmt.Errorf("edit file domain differs from the base system's"))
		}
	}
	persist := persistence{path: *ckptPath, every: *ckptEvery, resume: *resumePath}
	switch f.Domain {
	case eqdsl.DomainNatInf:
		sys, err := f.NatSystem()
		if err != nil {
			fatal(err)
		}
		edit := overlay(editF, (*eqdsl.File).NatSystem)
		run(f, sys, lattice.NatInf, *solverFlag, *opFlag, *query,
			func(string) lattice.Nat { return lattice.NatOf(0) }, cfg, *certifyFlag, *escalateFlag,
			persist, ckptcodec.NatCodec(), edit, *resolveFlag)
	case eqdsl.DomainInterval:
		sys, err := f.IntervalSystem()
		if err != nil {
			fatal(err)
		}
		edit := overlay(editF, (*eqdsl.File).IntervalSystem)
		run(f, sys, lattice.Ints, *solverFlag, *opFlag, *query,
			func(string) lattice.Interval { return lattice.EmptyInterval }, cfg, *certifyFlag, *escalateFlag,
			persist, ckptcodec.StringIntervalCodec(), edit, *resolveFlag)
	}
}

// editSet is the parsed -edit overlay for one concrete domain: the overlay
// system plus its definition order.
type editSet[D any] struct {
	sys   *eqn.System[string, D]
	order []string
}

// overlay builds the typed edit set from the parsed -edit file (nil when no
// overlay was requested).
func overlay[D any](f *eqdsl.File, build func(*eqdsl.File) (*eqn.System[string, D], error)) *editSet[D] {
	if f == nil {
		return nil
	}
	sys, err := build(f)
	if err != nil {
		fatal(fmt.Errorf("edit file: %w", err))
	}
	return &editSet[D]{sys: sys, order: f.Order}
}

// persistence bundles the -checkpoint/-checkpoint-every/-resume flags.
type persistence struct {
	path   string
	every  int
	resume string
}

// escalation maps each generic solver to the structured variant that
// terminates with ⊟ where the generic one may diverge (paper Thms. 2 and 4).
var escalation = map[string]string{"rr": "srr", "w": "sw"}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eqsolve:", err)
	os.Exit(1)
}

// usage reports a flag-combination mistake: one actionable line, exit 2
// (the conventional usage-error status, matching flag.Usage misuse).
func usage(msg string) {
	fmt.Fprintln(os.Stderr, "eqsolve: usage:", msg)
	os.Exit(2)
}

// run dispatches on solver and operator names for a concrete domain.
func run[D any](f *eqdsl.File, sys *eqn.System[string, D], l lattice.Lattice[D],
	solverName, opName, query string, init func(string) D, cfg solver.Config, check, escalate bool,
	persist persistence, codec solver.Codec[string, D], edit *editSet[D], resolve bool) {

	writeCkpt := func(cp *solver.Checkpoint[string, D]) {
		data, err := solver.MarshalCheckpoint(cp, codec)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(persist.path, data, 0o644); err != nil {
			fatal(err)
		}
	}
	if persist.resume != "" {
		data, err := os.ReadFile(persist.resume)
		if err != nil {
			fatal(err)
		}
		cp, err := solver.UnmarshalCheckpoint[string, D](data, codec)
		if err != nil {
			fatal(err)
		}
		if solverName == "cpw" && cp.Solver != "cpw" {
			usage(fmt.Sprintf("-solver cpw cannot resume a %q checkpoint; rerun with -solver %s or start cpw fresh", cp.Solver, cp.Solver))
		}
		cfg.Resume = cp
		fmt.Printf("resuming %s from %s (%d evaluations done)\n", cp.Solver, persist.resume, cp.Evals)
	}
	if persist.path != "" && persist.every > 0 {
		cfg.CheckpointEvery = persist.every
		cfg.CheckpointSink = func(cp any) {
			if typed, ok := cp.(*solver.Checkpoint[string, D]); ok {
				writeCkpt(typed)
			}
		}
	}

	var combine solver.Combine[D]
	switch opName {
	case "join":
		combine = solver.Join(l)
	case "widen":
		combine = solver.Widen(l)
	case "narrow":
		combine = solver.Narrow(l)
	case "warrow":
		combine = solver.Warrow(l)
	case "replace":
		combine = solver.Replace[D]()
	default:
		fatal(fmt.Errorf("unknown operator %q", opName))
	}
	op := solver.Op[string](combine)

	// printOrder is the base definition order plus any unknowns the -edit
	// overlay adds.
	printOrder := f.Order
	applyEdits := func() {}
	if edit != nil {
		seen := make(map[string]bool, len(f.Order))
		for _, x := range f.Order {
			seen[x] = true
		}
		for _, x := range edit.order {
			if !seen[x] {
				printOrder = append(printOrder, x)
			}
		}
		applyEdits = func() {
			for _, x := range edit.order {
				deps, rhs, raw := edit.sys.Deps(x), edit.sys.RHS(x), edit.sys.RawRHSOf(x)
				switch {
				case sys.RHS(x) == nil:
					sys.Define(x, deps, rhs)
					if raw != nil {
						sys.AttachRaw(x, raw)
					}
				default:
					sys.RedefineRaw(x, deps, rhs, raw)
				}
			}
		}
	}

	if resolve {
		if opName != "warrow" {
			fatal(fmt.Errorf("-resolve drives the ⊟ incremental engine (use -op warrow)"))
		}
		eng, err := incr.New(l, sys, init, solverName)
		if err != nil {
			fatal(err)
		}
		scfg := cfg
		scfg.Resume = nil // a -resume checkpoint belongs to the interrupted re-solve
		if _, err := eng.Solve(scfg); err != nil {
			fatal(fmt.Errorf("initial solve: %w", err))
		}
		applyEdits()
		res, err := eng.Resolve(cfg)
		if err != nil {
			fmt.Printf("%s incremental: %v\n", solverName, err)
			if persist.path != "" {
				if cp, ok := solver.CheckpointOf[string, D](err); ok {
					writeCkpt(cp)
					fmt.Printf("  checkpoint written to %s (%d evaluations done)\n", persist.path, cp.Evals)
				}
			}
			os.Exit(1)
		}
		fmt.Printf("%s with %s: incrementally re-solved %d of %d unknowns (%d reused, %d dirty strata) in %d evaluations, %d updates\n",
			solverName, opName, res.DirtyUnknowns, res.DirtyUnknowns+res.ReusedUnknowns,
			res.ReusedUnknowns, res.ConeStrata, res.Stats.Evals, res.Stats.Updates)
		for _, x := range printOrder {
			if v, ok := res.Values[x]; ok {
				fmt.Printf("  %-8s = %s\n", x, l.Format(v))
			}
		}
		if check {
			rep := certify.System(l, sys, res.Values, init)
			fmt.Printf("  certify: %s\n", rep)
			if !rep.OK() {
				os.Exit(1)
			}
		}
		return
	}
	applyEdits()

	solveOnce := func(name string) (map[string]D, solver.Stats, error) {
		switch name {
		case "rr":
			return solver.RR(sys, l, op, init, cfg)
		case "w":
			return solver.W(sys, l, op, init, cfg)
		case "srr":
			return solver.SRR(sys, l, op, init, cfg)
		case "sw":
			return solver.SW(sys, l, op, init, cfg)
		case "psw":
			return solver.PSW(sys, l, op, init, cfg)
		case "cpw":
			return solver.CPW(sys, l, op, init, cfg)
		case "slr2":
			return solver.SLR2(sys, l, op, init, cfg)
		case "slr3":
			return solver.SLR3(sys, l, op, init, cfg)
		case "slr4":
			return solver.SLR4(sys, l, op, init, cfg)
		case "slr":
			if query == "" {
				query = f.Order[len(f.Order)-1]
			}
			res, err := solver.SLR(sys.AsPure(), l, op, init, query, cfg)
			return res.Values, res.Stats, err
		default:
			fatal(fmt.Errorf("unknown solver %q", name))
			panic("unreachable")
		}
	}

	used := solverName
	sigma, st, err := solveOnce(solverName)
	if err != nil {
		fmt.Printf("%s with %s: %v after %d evaluations (partial state below)\n",
			solverName, opName, err, st.Evals)
		if persist.path != "" {
			if cp, ok := solver.CheckpointOf[string, D](err); ok {
				writeCkpt(cp)
				fmt.Printf("  checkpoint written to %s (%d evaluations done)\n", persist.path, cp.Evals)
			}
		}
		// A checkpoint names the solver that wrote it; the structured
		// variant must start fresh.
		cfg.Resume = nil
		if target := escalation[solverName]; escalate && target != "" {
			fmt.Printf("  escalating %s → %s (the structured variant terminates where %s may diverge)\n",
				solverName, target, solverName)
			if sigma2, st2, err2 := solveOnce(target); err2 == nil {
				used, sigma, st, err = target, sigma2, st2, nil
				fmt.Printf("%s with %s: solved in %d evaluations, %d updates (escalated from %s)\n",
					target, opName, st.Evals, st.Updates, solverName)
			} else {
				fmt.Printf("  escalation to %s also aborted: %v\n", target, err2)
			}
		}
	} else {
		fmt.Printf("%s with %s: solved in %d evaluations, %d updates\n",
			solverName, opName, st.Evals, st.Updates)
	}
	if used == "psw" {
		fmt.Printf("  parallel: %d workers, %d strata over %d SCCs\n",
			st.Workers, st.Strata, st.SCCs)
	}
	if used == "cpw" {
		fmt.Printf("  chaotic: %d workers, %d strata over %d SCCs, %d contended evaluations\n",
			st.Workers, st.Strata, st.SCCs, st.Contention)
	}
	if used == "slr3" || used == "slr4" {
		fmt.Printf("  widening points: %d restarts\n", st.Restarts)
	}
	for _, x := range printOrder {
		if v, ok := sigma[x]; ok {
			fmt.Printf("  %-8s = %s\n", x, l.Format(v))
		}
	}
	if err != nil {
		os.Exit(1)
	}
	if check {
		// SLR returns a partial assignment closed under dependences; the
		// global solvers cover the whole system.
		var rep certify.Report[string, D]
		if used == "slr" {
			rep = certify.Partial(l, sys.AsPure(), sigma, init)
		} else {
			rep = certify.System(l, sys, sigma, init)
		}
		fmt.Printf("  certify: %s\n", rep)
		if !rep.OK() {
			os.Exit(1)
		}
	}
}
