package main

import (
	"fmt"
	"os"
	"time"

	"warrow/internal/certify"
	"warrow/internal/ckptcodec"
	"warrow/internal/eqdsl"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/serve"
	"warrow/internal/serve/proto"
	"warrow/internal/solver"
)

// connectCfg carries the flags a served solve understands.
type connectCfg struct {
	solver   string
	maxEvals int
	timeout  time.Duration
	maxFlips int
}

// runConnect submits the parsed system to an eqsolved daemon instead of
// solving locally. The daemon always solves with ⊟ (the same operator and
// init conventions as a local `-op warrow` run), so completed values decode
// and certify exactly like local ones.
func runConnect[D any](addr string, f *eqdsl.File, sys *eqn.System[string, D], l lattice.Lattice[D],
	raw string, cfg connectCfg, init func(string) D, codec solver.Codec[string, D],
	check bool, persist persistence) {

	req := &proto.Request{
		Solver:    cfg.solver,
		Source:    proto.SourceEq,
		System:    raw,
		MaxEvals:  cfg.maxEvals,
		TimeoutNs: int64(cfg.timeout),
		MaxFlips:  cfg.maxFlips,
	}
	if persist.resume != "" {
		data, err := os.ReadFile(persist.resume)
		if err != nil {
			fatal(err)
		}
		req.Checkpoint = string(data)
		fmt.Printf("resuming from %s at %s\n", persist.resume, addr)
	}
	if err := req.Validate(); err != nil {
		fatal(err)
	}
	c, err := serve.Dial(addr, 10*time.Second)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	resp, err := c.Do(req)
	if err != nil {
		fatal(err)
	}
	switch resp.Status {
	case proto.StatusCompleted:
		fmt.Printf("%s at %s: solved in %d evaluations, %d updates (%d preemptions)\n",
			cfg.solver, addr, resp.Stats.Evals, resp.Stats.Updates, resp.Preemptions)
		sigma := make(map[string]D, len(resp.Values))
		for name, enc := range resp.Values {
			v, err := codec.DecodeD(enc)
			if err != nil {
				fatal(fmt.Errorf("undecodable served value for %s: %w", name, err))
			}
			sigma[name] = v
		}
		for _, x := range f.Order {
			if v, ok := sigma[x]; ok {
				fmt.Printf("  %-8s = %s\n", x, l.Format(v))
			}
		}
		if check {
			rep := certify.System(l, sys, sigma, init)
			fmt.Printf("  certify: %s\n", rep)
			if !rep.OK() {
				os.Exit(1)
			}
		}
	case proto.StatusAborted:
		fmt.Printf("%s at %s: aborted (%s) after %d evaluations\n",
			cfg.solver, addr, resp.Abort.Reason, resp.Abort.Evals)
		if resp.Checkpoint != "" && persist.path != "" {
			if err := os.WriteFile(persist.path, []byte(resp.Checkpoint), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("  checkpoint written to %s (resume with -connect %s -resume %s)\n",
				persist.path, addr, persist.path)
		}
		os.Exit(1)
	default:
		fmt.Fprintf(os.Stderr, "eqsolve: %s rejected the request: %s\n", addr, resp.Reason)
		os.Exit(1)
	}
}

// connectDispatch picks the typed runConnect instantiation for the file's
// domain and enforces the flag subset a served solve supports.
func connectDispatch(addr string, f *eqdsl.File, raw string, cfg connectCfg,
	check bool, persist persistence) {
	if !proto.Preemptible(cfg.solver) {
		// Non-preemptible served solvers still exist (slr2-4) — only reject
		// names the daemon does not know at all.
		known := false
		for _, s := range proto.Solvers {
			if s == cfg.solver {
				known = true
			}
		}
		if !known {
			usage(fmt.Sprintf("-connect serves the global solvers (%v), not %q", proto.Solvers, cfg.solver))
		}
	}
	switch f.Domain {
	case eqdsl.DomainNatInf:
		sys, err := f.NatSystem()
		if err != nil {
			fatal(err)
		}
		runConnect(addr, f, sys, lattice.NatInf, raw, cfg,
			func(string) lattice.Nat { return lattice.NatOf(0) }, ckptcodec.NatCodec(), check, persist)
	case eqdsl.DomainInterval:
		sys, err := f.IntervalSystem()
		if err != nil {
			fatal(err)
		}
		runConnect(addr, f, sys, lattice.Ints, raw, cfg,
			func(string) lattice.Interval { return lattice.EmptyInterval }, ckptcodec.StringIntervalCodec(), check, persist)
	}
}
