package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

func runEqsolve(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestEqsolveSRRTerminates(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "srr", "-op", "warrow", "../../examples/systems/example1.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "solved") || strings.Count(out, "∞") != 3 {
		t.Errorf("output:\n%s", out)
	}
}

func TestEqsolveRRDiverges(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "rr", "-op", "warrow", "-max-evals", "2000",
		"../../examples/systems/example1.eq")
	if err == nil {
		t.Fatalf("expected nonzero exit:\n%s", out)
	}
	if !strings.Contains(out, "budget exceeded") {
		t.Errorf("output:\n%s", out)
	}
}

// TestEqsolveEscalate: the full degradation story on Example 1 — RR's ⊟
// divergence is caught by the oscillation watchdog, the workload escalates
// to SRR, and the certified rerun makes the process exit 0.
func TestEqsolveEscalate(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "rr", "-op", "warrow", "-max-flips", "8",
		"-escalate", "-certify", "../../examples/systems/example1.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"oscillation", "escalating rr → srr", "escalated from rr", "certified"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "∞") != 3 {
		t.Errorf("escalated solution incomplete:\n%s", out)
	}
}

// TestEqsolveTimeout: a wall-clock bound turns an unbounded divergent run
// into a structured deadline abort with nonzero exit.
func TestEqsolveTimeout(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "rr", "-op", "warrow", "-max-evals", "0",
		"-timeout", "200ms", "../../examples/systems/example1.eq")
	if err == nil {
		t.Fatalf("expected nonzero exit:\n%s", out)
	}
	if !strings.Contains(out, "deadline exceeded") {
		t.Errorf("no deadline abort in output:\n%s", out)
	}
}

func TestEqsolveIntervalLoop(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "sw", "-op", "warrow", "../../examples/systems/loop.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"[0,100]", "[0,99]", "[100,100]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestEqsolveSLRQuery(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "slr", "-op", "warrow", "-query", "e",
		"../../examples/systems/loop.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "[100,100]") {
		t.Errorf("output:\n%s", out)
	}
}

func TestEqsolveCertifyFlag(t *testing.T) {
	cases := [][]string{
		{"-solver", "sw", "-op", "warrow", "-certify", "../../examples/systems/loop.eq"},
		{"-solver", "psw", "-op", "warrow", "-certify", "../../examples/systems/loop.eq"},
		{"-solver", "slr", "-op", "warrow", "-query", "e", "-certify", "../../examples/systems/loop.eq"},
		{"-solver", "srr", "-op", "warrow", "-certify", "../../examples/systems/example1.eq"},
	}
	for _, args := range cases {
		out, err := runEqsolve(t, args...)
		if err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
		if !strings.Contains(out, "certify:") || !strings.Contains(out, "certified") {
			t.Errorf("%v: no certification line:\n%s", args, out)
		}
	}
}

// TestEqsolveCheckpointResume: interrupt SW on loop.eq with a tiny budget,
// writing a checkpoint, then resume it to completion with certification.
func TestEqsolveCheckpointResume(t *testing.T) {
	cp := t.TempDir() + "/loop.cp"
	out, err := runEqsolve(t, "-solver", "sw", "-op", "warrow", "-max-evals", "5",
		"-checkpoint", cp, "../../examples/systems/loop.eq")
	if err == nil {
		t.Fatalf("expected budget abort:\n%s", out)
	}
	if !strings.Contains(out, "checkpoint written to "+cp) {
		t.Fatalf("no checkpoint message:\n%s", out)
	}
	out, err = runEqsolve(t, "-solver", "sw", "-op", "warrow", "-certify",
		"-resume", cp, "../../examples/systems/loop.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"resuming sw from " + cp, "solved", "certified", "[0,100]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

// TestEqsolveResumeRejectsWrongSolver: a checkpoint names the solver that
// wrote it; resuming it with another solver must fail cleanly.
func TestEqsolveResumeRejectsWrongSolver(t *testing.T) {
	cp := t.TempDir() + "/loop.cp"
	out, err := runEqsolve(t, "-solver", "sw", "-op", "warrow", "-max-evals", "5",
		"-checkpoint", cp, "../../examples/systems/loop.eq")
	if err == nil {
		t.Fatalf("expected budget abort:\n%s", out)
	}
	out, err = runEqsolve(t, "-solver", "srr", "-op", "warrow", "-resume", cp,
		"../../examples/systems/loop.eq")
	if err == nil {
		t.Fatalf("expected resume rejection:\n%s", out)
	}
	if !strings.Contains(out, "checkpoint") {
		t.Errorf("no checkpoint diagnosis:\n%s", out)
	}
}

// TestEqsolvePeriodicCheckpoint: -checkpoint-every snapshots mid-flight, so
// a checkpoint file exists even when the run completes.
func TestEqsolvePeriodicCheckpoint(t *testing.T) {
	cp := t.TempDir() + "/loop.cp"
	out, err := runEqsolve(t, "-solver", "sw", "-op", "warrow",
		"-checkpoint", cp, "-checkpoint-every", "3", "../../examples/systems/loop.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(cp)
	if err != nil {
		t.Fatalf("no periodic checkpoint written: %v", err)
	}
	if !strings.HasPrefix(string(data), "warrow-checkpoint v1") {
		t.Errorf("unexpected checkpoint header: %.40s", data)
	}
}

// TestEqsolveRetryFlagAccepted: -retry wires a retry policy through the
// solve; on a healthy system it must not change the outcome.
func TestEqsolveRetryFlagAccepted(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "sw", "-op", "warrow", "-retry", "3",
		"-retry-base", "1ms", "-certify", "../../examples/systems/loop.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "certified") {
		t.Errorf("output:\n%s", out)
	}
}

// TestEqsolveCertifyRejectsNonPost: iterating loop.eq with the narrow
// operator from ⊥ stabilizes below the least solution; -certify must report
// a counterexample and exit nonzero.
func TestEqsolveCertifyRejectsNonPost(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "sw", "-op", "narrow", "-certify",
		"../../examples/systems/loop.eq")
	if err == nil {
		t.Fatalf("expected certification failure:\n%s", out)
	}
	if !strings.Contains(out, "certify:") || !strings.Contains(out, "⋢") {
		t.Errorf("no counterexample in output:\n%s", out)
	}
}
