package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// eqsolveBin is the test binary, built once in TestMain so the CLI tests can
// assert real exit codes (go run does not propagate the child's status).
var eqsolveBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "eqsolve-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	eqsolveBin = filepath.Join(dir, "eqsolve")
	if out, err := exec.Command("go", "build", "-o", eqsolveBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building eqsolve: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func runEqsolve(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(eqsolveBin, args...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// exitCode extracts the process exit status (-1 if the run did not fail with
// an ExitError).
func exitCode(err error) int {
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}

func TestEqsolveSRRTerminates(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "srr", "-op", "warrow", "../../examples/systems/example1.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "solved") || strings.Count(out, "∞") != 3 {
		t.Errorf("output:\n%s", out)
	}
}

func TestEqsolveRRDiverges(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "rr", "-op", "warrow", "-max-evals", "2000",
		"../../examples/systems/example1.eq")
	if err == nil {
		t.Fatalf("expected nonzero exit:\n%s", out)
	}
	if !strings.Contains(out, "budget exceeded") {
		t.Errorf("output:\n%s", out)
	}
}

// TestEqsolveEscalate: the full degradation story on Example 1 — RR's ⊟
// divergence is caught by the oscillation watchdog, the workload escalates
// to SRR, and the certified rerun makes the process exit 0.
func TestEqsolveEscalate(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "rr", "-op", "warrow", "-max-flips", "8",
		"-escalate", "-certify", "../../examples/systems/example1.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"oscillation", "escalating rr → srr", "escalated from rr", "certified"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "∞") != 3 {
		t.Errorf("escalated solution incomplete:\n%s", out)
	}
}

// TestEqsolveTimeout: a wall-clock bound turns an unbounded divergent run
// into a structured deadline abort with nonzero exit.
func TestEqsolveTimeout(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "rr", "-op", "warrow", "-max-evals", "0",
		"-timeout", "200ms", "../../examples/systems/example1.eq")
	if err == nil {
		t.Fatalf("expected nonzero exit:\n%s", out)
	}
	if !strings.Contains(out, "deadline exceeded") {
		t.Errorf("no deadline abort in output:\n%s", out)
	}
}

func TestEqsolveIntervalLoop(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "sw", "-op", "warrow", "../../examples/systems/loop.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"[0,100]", "[0,99]", "[100,100]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestEqsolveSLRQuery(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "slr", "-op", "warrow", "-query", "e",
		"../../examples/systems/loop.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "[100,100]") {
		t.Errorf("output:\n%s", out)
	}
}

func TestEqsolveCertifyFlag(t *testing.T) {
	cases := [][]string{
		{"-solver", "sw", "-op", "warrow", "-certify", "../../examples/systems/loop.eq"},
		{"-solver", "psw", "-op", "warrow", "-certify", "../../examples/systems/loop.eq"},
		{"-solver", "slr", "-op", "warrow", "-query", "e", "-certify", "../../examples/systems/loop.eq"},
		{"-solver", "srr", "-op", "warrow", "-certify", "../../examples/systems/example1.eq"},
	}
	for _, args := range cases {
		out, err := runEqsolve(t, args...)
		if err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
		if !strings.Contains(out, "certify:") || !strings.Contains(out, "certified") {
			t.Errorf("%v: no certification line:\n%s", args, out)
		}
	}
}

// TestEqsolveCheckpointResume: interrupt SW on loop.eq with a tiny budget,
// writing a checkpoint, then resume it to completion with certification.
func TestEqsolveCheckpointResume(t *testing.T) {
	cp := t.TempDir() + "/loop.cp"
	out, err := runEqsolve(t, "-solver", "sw", "-op", "warrow", "-max-evals", "5",
		"-checkpoint", cp, "../../examples/systems/loop.eq")
	if err == nil {
		t.Fatalf("expected budget abort:\n%s", out)
	}
	if !strings.Contains(out, "checkpoint written to "+cp) {
		t.Fatalf("no checkpoint message:\n%s", out)
	}
	out, err = runEqsolve(t, "-solver", "sw", "-op", "warrow", "-certify",
		"-resume", cp, "../../examples/systems/loop.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"resuming sw from " + cp, "solved", "certified", "[0,100]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

// TestEqsolveResumeRejectsWrongSolver: a checkpoint names the solver that
// wrote it; resuming it with another solver must fail cleanly.
func TestEqsolveResumeRejectsWrongSolver(t *testing.T) {
	cp := t.TempDir() + "/loop.cp"
	out, err := runEqsolve(t, "-solver", "sw", "-op", "warrow", "-max-evals", "5",
		"-checkpoint", cp, "../../examples/systems/loop.eq")
	if err == nil {
		t.Fatalf("expected budget abort:\n%s", out)
	}
	out, err = runEqsolve(t, "-solver", "srr", "-op", "warrow", "-resume", cp,
		"../../examples/systems/loop.eq")
	if err == nil {
		t.Fatalf("expected resume rejection:\n%s", out)
	}
	if !strings.Contains(out, "checkpoint") {
		t.Errorf("no checkpoint diagnosis:\n%s", out)
	}
}

// TestEqsolvePeriodicCheckpoint: -checkpoint-every snapshots mid-flight, so
// a checkpoint file exists even when the run completes.
func TestEqsolvePeriodicCheckpoint(t *testing.T) {
	cp := t.TempDir() + "/loop.cp"
	out, err := runEqsolve(t, "-solver", "sw", "-op", "warrow",
		"-checkpoint", cp, "-checkpoint-every", "3", "../../examples/systems/loop.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(cp)
	if err != nil {
		t.Fatalf("no periodic checkpoint written: %v", err)
	}
	if !strings.HasPrefix(string(data), "warrow-checkpoint v1") {
		t.Errorf("unexpected checkpoint header: %.40s", data)
	}
}

// TestEqsolveRetryFlagAccepted: -retry wires a retry policy through the
// solve; on a healthy system it must not change the outcome.
func TestEqsolveRetryFlagAccepted(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "sw", "-op", "warrow", "-retry", "3",
		"-retry-base", "1ms", "-certify", "../../examples/systems/loop.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "certified") {
		t.Errorf("output:\n%s", out)
	}
}

// TestEqsolveSLRFamilySolvers: the widening-point solvers are reachable
// from the CLI and their (non-bit-pinned) results certify as post-solutions.
// slr3/slr4 additionally report their restart count.
func TestEqsolveSLRFamilySolvers(t *testing.T) {
	for _, s := range []string{"slr2", "slr3", "slr4"} {
		out, err := runEqsolve(t, "-solver", s, "-op", "warrow", "-certify",
			"../../examples/systems/loop.eq")
		if err != nil {
			t.Fatalf("%s: %v\n%s", s, err, out)
		}
		for _, want := range []string{"solved", "certified", "[100,100]"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s: missing %q:\n%s", s, want, out)
			}
		}
		if s != "slr2" && !strings.Contains(out, "widening points:") {
			t.Errorf("%s: no restart report:\n%s", s, out)
		}
	}
}

// TestEqsolveResolveRequiresEdit: -resolve without -edit is a usage error —
// one actionable line, exit 2.
func TestEqsolveResolveRequiresEdit(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "sw", "-resolve", "../../examples/systems/loop.eq")
	if code := exitCode(err); code != 2 {
		t.Fatalf("exit code = %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "usage:") || !strings.Contains(out, "-edit") {
		t.Errorf("not an actionable usage line:\n%s", out)
	}
	if n := strings.Count(strings.TrimSpace(out), "\n"); n != 0 {
		t.Errorf("usage error spans %d extra lines:\n%s", n, out)
	}
}

// TestEqsolveEditRejectsNonOverlay: pointing -edit at a closed system file
// (no `open` marker) is a usage error naming the fix — one line, exit 2.
func TestEqsolveEditRejectsNonOverlay(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "sw", "-edit", "../../examples/systems/example1.eq",
		"../../examples/systems/loop.eq")
	if code := exitCode(err); code != 2 {
		t.Fatalf("exit code = %d, want 2:\n%s", code, out)
	}
	for _, want := range []string{"usage:", "example1.eq", "`open`"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in usage line:\n%s", want, out)
		}
	}
	if n := strings.Count(strings.TrimSpace(out), "\n"); n != 0 {
		t.Errorf("usage error spans %d extra lines:\n%s", n, out)
	}
}

// TestEqsolveSLRFamilyEdit: the family solvers compose with -edit overlays
// (scratch solve of the edited system) like the other global solvers.
func TestEqsolveSLRFamilyEdit(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "slr3", "-op", "warrow", "-certify",
		"-edit", "../../examples/systems/loop_edit.eq", "../../examples/systems/loop.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"solved", "certified"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

// TestEqsolveCertifyRejectsNonPost: iterating loop.eq with the narrow
// operator from ⊥ stabilizes below the least solution; -certify must report
// a counterexample and exit nonzero.
func TestEqsolveCertifyRejectsNonPost(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "sw", "-op", "narrow", "-certify",
		"../../examples/systems/loop.eq")
	if err == nil {
		t.Fatalf("expected certification failure:\n%s", out)
	}
	if !strings.Contains(out, "certify:") || !strings.Contains(out, "⋢") {
		t.Errorf("no counterexample in output:\n%s", out)
	}
}

// TestEqsolveCPW: the chaotic parallel solver is reachable from the CLI,
// reports its worker/stratum/contention line, and its (non-bit-pinned)
// result certifies as a post-solution.
func TestEqsolveCPW(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "cpw", "-op", "warrow", "-workers", "2",
		"-certify", "../../examples/systems/loop.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"solved", "chaotic: 2 workers", "certified", "[100,100]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

// TestEqsolveCPWCheckpointResume: interrupt CPW with a tiny budget, then
// resume the quiesce-and-drain checkpoint to a certified completion.
func TestEqsolveCPWCheckpointResume(t *testing.T) {
	cp := t.TempDir() + "/loop.cp"
	out, err := runEqsolve(t, "-solver", "cpw", "-op", "warrow", "-max-evals", "5",
		"-checkpoint", cp, "../../examples/systems/loop.eq")
	if err == nil {
		t.Fatalf("expected budget abort:\n%s", out)
	}
	if !strings.Contains(out, "checkpoint written to "+cp) {
		t.Fatalf("no checkpoint message:\n%s", out)
	}
	out, err = runEqsolve(t, "-solver", "cpw", "-op", "warrow", "-certify",
		"-resume", cp, "../../examples/systems/loop.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"resuming cpw from " + cp, "solved", "certified"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

// TestEqsolveCPWRejectsForeignResume: pointing -solver cpw at a checkpoint
// written by another solver is a usage error — one actionable line, exit 2,
// before any solving state is built.
func TestEqsolveCPWRejectsForeignResume(t *testing.T) {
	cp := t.TempDir() + "/loop.cp"
	out, err := runEqsolve(t, "-solver", "sw", "-op", "warrow", "-max-evals", "5",
		"-checkpoint", cp, "../../examples/systems/loop.eq")
	if err == nil {
		t.Fatalf("expected budget abort:\n%s", out)
	}
	out, err = runEqsolve(t, "-solver", "cpw", "-op", "warrow", "-resume", cp,
		"../../examples/systems/loop.eq")
	if code := exitCode(err); code != 2 {
		t.Fatalf("exit code = %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "usage:") || !strings.Contains(out, `"sw"`) {
		t.Errorf("not an actionable usage line:\n%s", out)
	}
	if n := strings.Count(strings.TrimSpace(out), "\n"); n != 0 {
		t.Errorf("usage error spans %d extra lines:\n%s", n, out)
	}
}
