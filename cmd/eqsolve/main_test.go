package main

import (
	"os/exec"
	"strings"
	"testing"
)

func runEqsolve(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestEqsolveSRRTerminates(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "srr", "-op", "warrow", "../../examples/systems/example1.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "solved") || strings.Count(out, "∞") != 3 {
		t.Errorf("output:\n%s", out)
	}
}

func TestEqsolveRRDiverges(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "rr", "-op", "warrow", "-max-evals", "2000",
		"../../examples/systems/example1.eq")
	if err == nil {
		t.Fatalf("expected nonzero exit:\n%s", out)
	}
	if !strings.Contains(out, "budget exceeded") {
		t.Errorf("output:\n%s", out)
	}
}

// TestEqsolveEscalate: the full degradation story on Example 1 — RR's ⊟
// divergence is caught by the oscillation watchdog, the workload escalates
// to SRR, and the certified rerun makes the process exit 0.
func TestEqsolveEscalate(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "rr", "-op", "warrow", "-max-flips", "8",
		"-escalate", "-certify", "../../examples/systems/example1.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"oscillation", "escalating rr → srr", "escalated from rr", "certified"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "∞") != 3 {
		t.Errorf("escalated solution incomplete:\n%s", out)
	}
}

// TestEqsolveTimeout: a wall-clock bound turns an unbounded divergent run
// into a structured deadline abort with nonzero exit.
func TestEqsolveTimeout(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "rr", "-op", "warrow", "-max-evals", "0",
		"-timeout", "200ms", "../../examples/systems/example1.eq")
	if err == nil {
		t.Fatalf("expected nonzero exit:\n%s", out)
	}
	if !strings.Contains(out, "deadline exceeded") {
		t.Errorf("no deadline abort in output:\n%s", out)
	}
}

func TestEqsolveIntervalLoop(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "sw", "-op", "warrow", "../../examples/systems/loop.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"[0,100]", "[0,99]", "[100,100]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestEqsolveSLRQuery(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "slr", "-op", "warrow", "-query", "e",
		"../../examples/systems/loop.eq")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "[100,100]") {
		t.Errorf("output:\n%s", out)
	}
}

func TestEqsolveCertifyFlag(t *testing.T) {
	cases := [][]string{
		{"-solver", "sw", "-op", "warrow", "-certify", "../../examples/systems/loop.eq"},
		{"-solver", "psw", "-op", "warrow", "-certify", "../../examples/systems/loop.eq"},
		{"-solver", "slr", "-op", "warrow", "-query", "e", "-certify", "../../examples/systems/loop.eq"},
		{"-solver", "srr", "-op", "warrow", "-certify", "../../examples/systems/example1.eq"},
	}
	for _, args := range cases {
		out, err := runEqsolve(t, args...)
		if err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
		if !strings.Contains(out, "certify:") || !strings.Contains(out, "certified") {
			t.Errorf("%v: no certification line:\n%s", args, out)
		}
	}
}

// TestEqsolveCertifyRejectsNonPost: iterating loop.eq with the narrow
// operator from ⊥ stabilizes below the least solution; -certify must report
// a counterexample and exit nonzero.
func TestEqsolveCertifyRejectsNonPost(t *testing.T) {
	out, err := runEqsolve(t, "-solver", "sw", "-op", "narrow", "-certify",
		"../../examples/systems/loop.eq")
	if err == nil {
		t.Fatalf("expected certification failure:\n%s", out)
	}
	if !strings.Contains(out, "certify:") || !strings.Contains(out, "⋢") {
		t.Errorf("no counterexample in output:\n%s", out)
	}
}
