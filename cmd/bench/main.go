// Command bench regenerates the paper's evaluation artifacts:
//
//	bench -fig7       Figure 7 (precision ⊟ vs two-phase on the WCET suite)
//	bench -table1     Table 1  (runtime/unknowns on SpecCPU-scale programs)
//	bench -traces     Examples 1–4 (solver divergence and termination)
//	bench -ablations  ⊟ₖ degradation, solver work, threshold widening
//	bench -psw        SW vs PSW speedup on the synthetic wide system
//	bench -all        everything
//
// The suites fan out across -workers goroutines (0 = GOMAXPROCS) with
// deterministic output ordering; -json writes the machine-readable
// measurements (PSW speedup rows, Table 1 cells) to a BENCH_*.json file so
// later changes have a perf trajectory to compare against. -timeout bounds
// every individual solve with a wall-clock deadline: a run that trips it
// fails with a structured deadline abort instead of hanging the suite.
package main

import (
	"flag"
	"fmt"
	"os"

	"warrow/internal/experiments"
)

func main() {
	fig7 := flag.Bool("fig7", false, "regenerate Figure 7")
	table1 := flag.Bool("table1", false, "regenerate Table 1")
	traces := flag.Bool("traces", false, "print Examples 1-4 solver traces")
	ablations := flag.Bool("ablations", false, "run the ablation studies")
	psw := flag.Bool("psw", false, "measure SW vs PSW at several worker counts")
	faults := flag.Bool("faults", false, "measure the fault-isolation layer: checkpoint and retry overhead")
	all := flag.Bool("all", false, "run everything")
	workers := flag.Int("workers", 0, "harness worker-pool size (0 = GOMAXPROCS)")
	jsonOut := flag.String("json", "", "write machine-readable perf rows to this file")
	timeout := flag.Duration("timeout", 0, "wall-clock bound per individual solve (0 = unbounded)")
	flag.Parse()
	experiments.SolveTimeout = *timeout

	if !*fig7 && !*table1 && !*traces && !*ablations && !*psw && !*faults && !*all {
		flag.Usage()
		os.Exit(2)
	}
	if *all {
		*fig7, *table1, *traces, *ablations, *psw, *faults = true, true, true, true, true, true
	}
	var perf []experiments.PerfRow
	if *traces {
		fmt.Println(experiments.TraceExamples())
	}
	if *fig7 {
		r, err := experiments.Fig7Workers(*workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig7:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.FormatFig7(r))
	}
	if *table1 {
		rows, err := experiments.Table1Workers(*workers, func(r experiments.Table1Row) {
			fmt.Fprintf(os.Stderr, "  done %-12s (noctx %d unknowns, ctx %d unknowns)\n",
				r.Name, r.WarrowNoCtx.Unknowns, r.WarrowCtx.Unknowns)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.FormatTable1(rows))
		perf = append(perf, experiments.Table1PerfRows(rows)...)
	}
	if *ablations {
		for _, out := range experiments.Ablations(*workers) {
			fmt.Println(out)
		}
	}
	if *psw {
		rows, err := experiments.PSWSpeedup(8, 3000, 24, []int{1, 2, 4, 8})
		if err != nil {
			fmt.Fprintln(os.Stderr, "psw:", err)
			os.Exit(1)
		}
		fmt.Println("SW vs PSW on the synthetic wide system (8 independent loop nests):")
		fmt.Println(experiments.FormatPerfRows(rows))
		perf = append(perf, rows...)
	}
	if *faults {
		rows, err := experiments.FaultOverhead(8, 3000, 24, 10000, 0.002)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faults:", err)
			os.Exit(1)
		}
		fmt.Println("Fault-isolation overhead on the synthetic wide system (SW):")
		fmt.Println(experiments.FormatPerfRows(rows))
		perf = append(perf, rows...)
	}
	if *jsonOut != "" {
		if err := experiments.WriteBenchJSON(*jsonOut, perf); err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d perf rows to %s\n", len(perf), *jsonOut)
	}
}
