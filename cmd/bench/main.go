// Command bench regenerates the paper's evaluation artifacts:
//
//	bench -fig7       Figure 7 (precision ⊟ vs two-phase on the WCET suite)
//	bench -table1     Table 1  (runtime/unknowns on SpecCPU-scale programs)
//	bench -traces     Examples 1–4 (solver divergence and termination)
//	bench -ablations  ⊟ₖ degradation, solver work, threshold widening
//	bench -all        everything
package main

import (
	"flag"
	"fmt"
	"os"

	"warrow/internal/experiments"
)

func main() {
	fig7 := flag.Bool("fig7", false, "regenerate Figure 7")
	table1 := flag.Bool("table1", false, "regenerate Table 1")
	traces := flag.Bool("traces", false, "print Examples 1-4 solver traces")
	ablations := flag.Bool("ablations", false, "run the ablation studies")
	all := flag.Bool("all", false, "run everything")
	flag.Parse()

	if !*fig7 && !*table1 && !*traces && !*ablations && !*all {
		flag.Usage()
		os.Exit(2)
	}
	if *all {
		*fig7, *table1, *traces, *ablations = true, true, true, true
	}
	if *traces {
		fmt.Println(experiments.TraceExamples())
	}
	if *fig7 {
		r, err := experiments.Fig7()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig7:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.FormatFig7(r))
	}
	if *table1 {
		rows, err := experiments.Table1(func(r experiments.Table1Row) {
			fmt.Fprintf(os.Stderr, "  done %-12s (noctx %d unknowns, ctx %d unknowns)\n",
				r.Name, r.WarrowNoCtx.Unknowns, r.WarrowCtx.Unknowns)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.FormatTable1(rows))
	}
	if *ablations {
		fmt.Println(experiments.AblationDegrading())
		fmt.Println(experiments.AblationSWvsW())
		fmt.Println(experiments.AblationThresholds())
		fmt.Println(experiments.AblationLocalized())
	}
}
