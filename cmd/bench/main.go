// Command bench regenerates the paper's evaluation artifacts:
//
//	bench -fig7       Figure 7 (precision ⊟ vs two-phase on the WCET suite)
//	bench -table1     Table 1  (runtime/unknowns on SpecCPU-scale programs)
//	bench -traces     Examples 1–4 (solver divergence and termination)
//	bench -ablations  ⊟ₖ degradation, solver work, threshold widening
//	bench -psw        SW vs PSW speedup on the synthetic wide system
//	bench -cpw        PSW vs CPW on the single giant-SCC ring (-mega scales
//	                  it past 10⁵ unknowns; the committed BENCH_cpw.json)
//	bench -dense      map core vs dense compiled core on eqgen systems
//	bench -unboxed    dense-boxed core vs unboxed word core on eqgen systems
//	bench -incr       incremental re-solve vs from-scratch on edit workloads
//	bench -slr        widening-point family SLR2/SLR3/SLR4: precision on the
//	                  WCET suite, evaluation totals on the eqgen macro matrix
//	                  (-slrjson regenerates the committed BENCH_slr.json)
//	bench -all        everything
//
// The suites fan out across -workers goroutines (0 = GOMAXPROCS) with
// deterministic output ordering; -json writes the machine-readable
// measurements (PSW speedup rows, Table 1 cells) to a BENCH_*.json file so
// later changes have a perf trajectory to compare against. -timeout bounds
// every individual solve with a wall-clock deadline: a run that trips it
// fails with a structured deadline abort instead of hanging the suite.
//
// Worker-scaling rows (-psw, -cpw) are refused outright on GOMAXPROCS=1 hosts:
// serial hardware cannot measure parallel speedup, and quietly writing
// rows that look like measurements would poison the perf trajectory.
// -allow-serial overrides the refusal for correctness smoke runs; the
// resulting JSON carries a prominent note. -smoke shrinks the -dense
// matrix for CI (see make bench-smoke).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"warrow/internal/eqgen"
	"warrow/internal/experiments"
)

// eqgenGiantRecipe is the generator-backed -cpw workload: an interval system
// with 95% of its unknowns fused into one SCC, the same recipe format the
// differential harness and the serving tier consume. -smoke shrinks it.
func eqgenGiantRecipe(smoke bool) eqgen.Config {
	n := 2048
	if smoke {
		n = 256
	}
	return eqgen.Config{
		Seed:         7,
		Dom:          eqgen.Interval,
		N:            n,
		FanIn:        2,
		GiantSCC:     0.95,
		WidenDensity: 0.3,
	}
}

func main() {
	fig7 := flag.Bool("fig7", false, "regenerate Figure 7")
	table1 := flag.Bool("table1", false, "regenerate Table 1")
	traces := flag.Bool("traces", false, "print Examples 1-4 solver traces")
	ablations := flag.Bool("ablations", false, "run the ablation studies")
	psw := flag.Bool("psw", false, "measure SW vs PSW at several worker counts")
	cpw := flag.Bool("cpw", false, "measure PSW vs CPW on the single giant-SCC ring at several worker counts")
	mega := flag.Bool("mega", false, "with -cpw: mega-scale ring (>=1e5 unknowns) instead of the default")
	dense := flag.Bool("dense", false, "measure the map core vs the dense compiled core on eqgen systems")
	unboxed := flag.Bool("unboxed", false, "measure the dense-boxed core vs the unboxed word core on eqgen systems")
	faults := flag.Bool("faults", false, "measure the fault-isolation layer: checkpoint and retry overhead")
	incrf := flag.Bool("incr", false, "measure incremental re-solves against from-scratch solves on edit workloads")
	slr := flag.Bool("slr", false, "measure the widening-point family SLR2/SLR3/SLR4: precision (interval widths) on the WCET suite, evals on the eqgen macro matrix")
	slrJSON := flag.String("slrjson", "", "write the -slr measurements to this file (the committed BENCH_slr.json artifact)")
	all := flag.Bool("all", false, "run everything")
	workers := flag.Int("workers", 0, "harness worker-pool size (0 = GOMAXPROCS)")
	jsonOut := flag.String("json", "", "write machine-readable perf rows to this file")
	timeout := flag.Duration("timeout", 0, "wall-clock bound per individual solve (0 = unbounded)")
	smoke := flag.Bool("smoke", false, "reduced -dense matrix for CI smoke runs")
	allowSerial := flag.Bool("allow-serial", false, "run worker-scaling suites even on GOMAXPROCS=1 (rows are correctness checks, not speedups)")
	flag.Parse()
	experiments.SolveTimeout = *timeout

	if !*fig7 && !*table1 && !*traces && !*ablations && !*psw && !*cpw && !*dense && !*unboxed && !*faults && !*incrf && !*slr && !*all {
		flag.Usage()
		os.Exit(2)
	}
	if *all {
		*fig7, *table1, *traces, *ablations, *psw, *cpw, *dense, *unboxed, *faults, *incrf, *slr = true, true, true, true, true, true, true, true, true, true, true
	}
	var note string
	var geomean float64
	var breakdown *experiments.GeomeanBreakdown
	for _, scaling := range []struct {
		on   bool
		name string
	}{{*psw, "psw"}, {*cpw, "cpw"}} {
		if !scaling.on || runtime.GOMAXPROCS(0) != 1 {
			continue
		}
		if !*allowSerial {
			fmt.Fprintf(os.Stderr, "%s: GOMAXPROCS=1 — worker-scaling rows would be meaningless on serial hardware.\n", scaling.name)
			fmt.Fprintf(os.Stderr, "%s: rerun on a multi-core host, or pass -allow-serial to record correctness-only rows.\n", scaling.name)
			os.Exit(1)
		}
		n := fmt.Sprintf("GOMAXPROCS=1: %s worker-scaling rows are serial correctness checks, not speedup measurements", scaling.name)
		if note != "" {
			note += "; " + n
		} else {
			note = n
		}
		fmt.Fprintln(os.Stderr, scaling.name+": WARNING:", n)
	}
	var perf []experiments.PerfRow
	if *traces {
		fmt.Println(experiments.TraceExamples())
	}
	if *fig7 {
		r, err := experiments.Fig7Workers(*workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig7:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.FormatFig7(r))
	}
	if *table1 {
		rows, err := experiments.Table1Workers(*workers, func(r experiments.Table1Row) {
			fmt.Fprintf(os.Stderr, "  done %-12s (noctx %d unknowns, ctx %d unknowns)\n",
				r.Name, r.WarrowNoCtx.Unknowns, r.WarrowCtx.Unknowns)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.FormatTable1(rows))
		perf = append(perf, experiments.Table1PerfRows(rows)...)
	}
	if *ablations {
		for _, out := range experiments.Ablations(*workers) {
			fmt.Println(out)
		}
	}
	if *psw {
		rows, err := experiments.PSWSpeedup(8, 3000, 24, []int{1, 2, 4, 8})
		if err != nil {
			fmt.Fprintln(os.Stderr, "psw:", err)
			os.Exit(1)
		}
		fmt.Println("SW vs PSW on the synthetic wide system (8 independent loop nests):")
		fmt.Println(experiments.FormatPerfRows(rows))
		perf = append(perf, rows...)
	}
	var giantFrac float64
	if *cpw {
		// Default ~6 400 unknowns; -smoke shrinks to ~1 600 for CI, -mega
		// scales to 102 400 (the committed BENCH_cpw.json configuration).
		chains, length := 16, 400
		switch {
		case *mega:
			chains, length = 64, 1600
		case *smoke:
			chains, length = 8, 200
		}
		rows, frac, err := experiments.CPWSpeedup(chains, length, 2, 0, []int{1, 2, 4, 8})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpw:", err)
			os.Exit(1)
		}
		giantFrac = frac
		fmt.Printf("PSW vs CPW on the giant-SCC ring (one stratum, %.0f%% of unknowns in one SCC):\n", 100*frac)
		fmt.Println(experiments.FormatPerfRows(rows))
		perf = append(perf, rows...)
		genRow, genFrac, err := experiments.CPWGenRow(eqgenGiantRecipe(*smoke), 4)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpw:", err)
			os.Exit(1)
		}
		fmt.Printf("CPW on the eqgen giant-SCC recipe (certified, %.0f%% giant): %s\n",
			100*genFrac, experiments.FormatPerfRows([]experiments.PerfRow{genRow}))
		perf = append(perf, genRow)
	}
	if *dense {
		rows, g, notes, err := experiments.DenseVsMap(experiments.DenseCases(*smoke), 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dense:", err)
			os.Exit(1)
		}
		geomean = g
		fmt.Println("Map core vs dense compiled core on eqgen macro-benchmarks:")
		fmt.Println(experiments.FormatDenseRows(rows, g))
		for _, n := range notes {
			fmt.Fprintln(os.Stderr, "dense: NOTE:", n)
		}
		if len(notes) > 0 {
			joined := strings.Join(notes, "; ")
			if note != "" {
				note += "; " + joined
			} else {
				note = joined
			}
		}
		perf = append(perf, rows...)
	}
	if *unboxed {
		rows, g, bd, notes, err := experiments.UnboxedVsDense(experiments.DenseCases(*smoke), 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "unboxed:", err)
			os.Exit(1)
		}
		geomean, breakdown = g, bd
		fmt.Println("Dense-boxed core vs unboxed word core on eqgen macro-benchmarks:")
		fmt.Println(experiments.FormatUnboxedRows(rows, g, bd))
		for _, n := range notes {
			fmt.Fprintln(os.Stderr, "unboxed: NOTE:", n)
		}
		if len(notes) > 0 {
			joined := strings.Join(notes, "; ")
			if note != "" {
				note += "; " + joined
			} else {
				note = joined
			}
		}
		perf = append(perf, rows...)
	}
	if *faults {
		rows, err := experiments.FaultOverhead(8, 3000, 24, 10000, 0.002)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faults:", err)
			os.Exit(1)
		}
		fmt.Println("Fault-isolation overhead on the synthetic wide system (SW):")
		fmt.Println(experiments.FormatPerfRows(rows))
		perf = append(perf, rows...)
	}
	if *incrf {
		rows, g, err := experiments.IncrWorkload(experiments.IncrCases(*smoke))
		if err != nil {
			fmt.Fprintln(os.Stderr, "incr:", err)
			os.Exit(1)
		}
		geomean = g
		fmt.Println("Incremental re-solve vs from-scratch SW on edit workloads:")
		fmt.Println(experiments.FormatIncrRows(rows, g))
		perf = append(perf, rows...)
	}
	if *slr {
		res, err := experiments.SLRBench(*workers, *smoke)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slr:", err)
			os.Exit(1)
		}
		fmt.Println("Widening-point family SLR2/SLR3/SLR4 vs the ⊟-everywhere SW baseline:")
		fmt.Println(experiments.FormatSLR(res))
		if *slrJSON != "" {
			slrNote := ""
			if *smoke {
				slrNote = "smoke run: reduced WCET and eqgen matrices"
			}
			if err := experiments.WriteSLRBench(*slrJSON, slrNote, res); err != nil {
				fmt.Fprintln(os.Stderr, "slrjson:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %d slr rows to %s\n", len(res.WCET), *slrJSON)
		}
	}
	if *jsonOut != "" {
		f := experiments.BenchFile{Note: note, GeomeanSpeedup: geomean, Breakdown: breakdown, GiantSCC: giantFrac, Rows: perf}
		if err := experiments.WriteBenchFile(*jsonOut, f); err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d perf rows to %s\n", len(perf), *jsonOut)
	}
}
