// Command warrow analyzes a mini-C program with the ⊟-based interval
// analysis and prints the inferred invariants.
//
//	warrow [flags] file.c        analyze a source file
//	warrow [flags] -bench name   analyze an embedded WCET benchmark
//	warrow -list                 list embedded benchmarks
//
// Flags select the fixpoint regime (-op warrow|widen|twophase), the context
// policy (-context none|bucket|full), the entry function and the output.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"time"

	"warrow/internal/analysis"
	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/lattice"
	"warrow/internal/solver"
	"warrow/internal/wcet"
)

// traceOp wraps an update operator and prints changed updates to stdout,
// the -trace debugging aid.
type traceOp struct {
	inner solver.Operator[analysis.Key, analysis.Env]
	l     *analysis.EnvLattice
	n     int
	limit int
}

// Apply implements solver.Operator.
func (o *traceOp) Apply(x analysis.Key, old, new analysis.Env) analysis.Env {
	r := o.inner.Apply(x, old, new)
	if !o.l.Eq(r, old) && o.n < o.limit {
		o.n++
		fmt.Printf("  [%4d] %-30s %s -> %s\n", o.n, x, old, r)
	}
	return r
}

func main() {
	// The local solver recurses per unknown; raise the stack limit as far as
	// the platform's int allows (6 GiB overflows a 32-bit int, so clamp).
	stack := int64(6) << 30
	if stack > int64(^uint(0)>>1) {
		stack = int64(^uint(0) >> 1)
	}
	debug.SetMaxStack(int(stack))
	opFlag := flag.String("op", "warrow", "fixpoint operator: warrow, widen, or twophase")
	ctxFlag := flag.String("context", "none", "context policy: none, bucket, or full")
	entry := flag.String("entry", "main", "entry function")
	benchName := flag.String("bench", "", "analyze the named embedded WCET benchmark")
	list := flag.Bool("list", false, "list embedded benchmarks")
	dumpCFG := flag.Bool("cfg", false, "dump control-flow graphs instead of analyzing")
	dumpDOT := flag.Bool("dot", false, "dump control-flow graphs as Graphviz dot")
	degrade := flag.Int("degrade", 0, "with -op warrow: switch to the self-terminating ⊟ₖ operator after k narrow→widen flips (0 = plain ⊟)")
	warnings := flag.Bool("warnings", false, "report possible division-by-zero, out-of-bounds subscripts, and dead code")
	localized := flag.Bool("localized", false, "with -op warrow: accelerate only at widening points (implies -degrade 2 unless set)")
	thresholds := flag.Bool("thresholds", false, "infer widening thresholds from the program's constants")
	trace := flag.Int("trace", 0, "print the first N solver value updates (0 = off)")
	maxEvals := flag.Int("max-evals", 50_000_000, "evaluation budget (0 = unbounded)")
	flag.Parse()

	if *list {
		for _, b := range wcet.All() {
			fmt.Printf("%-16s %4d loc\n", b.Name, b.LOC())
		}
		return
	}

	var src, name string
	switch {
	case *benchName != "":
		b, ok := wcet.ByName(*benchName)
		if !ok {
			fmt.Fprintf(os.Stderr, "warrow: no embedded benchmark %q (try -list)\n", *benchName)
			os.Exit(1)
		}
		src, name = b.Src, b.Name
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "warrow:", err)
			os.Exit(1)
		}
		src, name = string(data), flag.Arg(0)
	default:
		flag.Usage()
		os.Exit(2)
	}

	ast, err := cint.Parse(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warrow: %s: %v\n", name, err)
		os.Exit(1)
	}
	prog := cfg.Build(ast)

	if *dumpCFG {
		for _, fn := range prog.Order {
			fmt.Printf("=== %s ===\n%s\n", fn, prog.Graphs[fn].Dump())
		}
		return
	}
	if *dumpDOT {
		fmt.Print(prog.DOT())
		return
	}

	var op analysis.OpKind
	switch *opFlag {
	case "warrow":
		op = analysis.OpWarrow
	case "widen":
		op = analysis.OpWiden
	case "twophase":
		op = analysis.OpTwoPhase
	default:
		fmt.Fprintf(os.Stderr, "warrow: unknown -op %q\n", *opFlag)
		os.Exit(2)
	}
	var ctx analysis.ContextPolicy
	switch *ctxFlag {
	case "none":
		ctx = analysis.NoContext
	case "bucket":
		ctx = analysis.BucketContext
	case "full":
		ctx = analysis.FullContext
	default:
		fmt.Fprintf(os.Stderr, "warrow: unknown -context %q\n", *ctxFlag)
		os.Exit(2)
	}

	opts := analysis.Options{
		Entry:        *entry,
		Context:      ctx,
		Op:           op,
		DegradeAfter: *degrade,
		Localized:    *localized,
		MaxEvals:     *maxEvals,
	}
	if *thresholds {
		opts.Widening = analysis.InferThresholds(ast)
	}
	start := time.Now()
	var res *analysis.Result
	if *trace > 0 {
		if opts.Widening == nil {
			opts.Widening = lattice.Ints
		}
		envL := analysis.NewEnvLattice(opts.Widening)
		var inner solver.Operator[analysis.Key, analysis.Env]
		if op == analysis.OpWarrow {
			inner = solver.Op[analysis.Key](solver.Warrow[analysis.Env](envL))
		} else {
			inner = solver.Op[analysis.Key](solver.Widen[analysis.Env](envL))
		}
		res, err = analysis.RunWithOperator(prog, opts, &traceOp{inner: inner, l: envL, limit: *trace})
	} else {
		res, err = analysis.Run(prog, opts)
	}
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warrow: %s: %v (after %d evaluations)\n", name, err, res.Stats.Evals)
		os.Exit(1)
	}
	fmt.Printf("%s: op=%s context=%s  %d unknowns, %d evaluations, %v\n\n",
		name, op, ctx, res.NumUnknowns(), res.Stats.Evals, elapsed.Round(time.Millisecond))
	if rep := res.AssertionReport(); rep != "" {
		fmt.Println("assertions:")
		fmt.Print(rep)
		fmt.Println()
	}
	if *warnings {
		fmt.Println("warnings:")
		fmt.Print(res.WarningReport())
		fmt.Println()
	}
	fmt.Print(res.Report())
}
