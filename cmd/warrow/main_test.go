package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI builds-and-runs this command via `go run`, returning combined
// output.
func runCLI(t *testing.T, dir string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIAnalyzeBenchmark(t *testing.T) {
	out, err := runCLI(t, ".", "-bench", "bs")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"op=warrow", "binary_search", "flow-insensitive variables"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%.600s", want, out)
		}
	}
}

func TestCLIList(t *testing.T) {
	out, err := runCLI(t, ".", "-list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "qsort-exam") || !strings.Contains(out, "loc") {
		t.Errorf("list output:\n%.400s", out)
	}
}

func TestCLIFileWithAssertsAndWarnings(t *testing.T) {
	dir := t.TempDir()
	src := `
int a[4];
int main() {
    int i;
    i = 0;
    while (i < 4) { a[i] = i; i = i + 1; }
    assert(i == 4);
    return a[7];
}`
	path := filepath.Join(dir, "prog.c")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, ".", "-warnings", path)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"proved", "assert((i == 4))", "definite index-out-of-bounds"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIDumpsAndTrace(t *testing.T) {
	out, err := runCLI(t, ".", "-cfg", "-bench", "fac")
	if err != nil || !strings.Contains(out, "-> ") {
		t.Errorf("-cfg: err=%v\n%.300s", err, out)
	}
	out, err = runCLI(t, ".", "-dot", "-bench", "fac")
	if err != nil || !strings.Contains(out, "digraph") {
		t.Errorf("-dot: err=%v\n%.300s", err, out)
	}
	out, err = runCLI(t, ".", "-trace", "3", "-bench", "fac")
	if err != nil || !strings.Contains(out, "[   1]") {
		t.Errorf("-trace: err=%v\n%.300s", err, out)
	}
}

func TestCLIBadInputs(t *testing.T) {
	if out, err := runCLI(t, ".", "-bench", "no-such"); err == nil {
		t.Errorf("missing benchmark accepted:\n%s", out)
	}
	if out, err := runCLI(t, ".", "-op", "bogus", "-bench", "bs"); err == nil {
		t.Errorf("bad -op accepted:\n%s", out)
	}
	if out, err := runCLI(t, ".", "-context", "bogus", "-bench", "bs"); err == nil {
		t.Errorf("bad -context accepted:\n%s", out)
	}
}
