// Command eqsolved is the multi-tenant solve daemon: it accepts constraint
// systems over the eqsolved/1 wire protocol (see internal/serve/proto),
// multiplexes concurrent solves over a bounded worker pool with explicit
// admission control, enforces per-request deadlines under a server-side
// ceiling, and preempts long solves at quantum boundaries via the solver
// library's exact-resume checkpoints so short requests are not starved:
//
//	eqsolved -listen 127.0.0.1:7333 -workers 4 -queue 16 -max-timeout 1m -quantum 5000
//	eqsolved -listen 127.0.0.1:7333 -metrics 127.0.0.1:7334   # counters on /metrics
//
// The daemon prints its actual listen address on stdout once it accepts
// connections (useful with -listen :0), logs one JSON line per event to
// stderr, and shuts down cleanly on SIGINT/SIGTERM: in-flight solves are
// cancelled through their contexts and every accepted request reaches a
// terminal outcome before the process exits.
//
// Submit work with `eqsolve -connect ADDR FILE.eq`.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"warrow/internal/serve"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to serve the wire protocol on")
	workers := flag.Int("workers", 0, "solve worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admitted requests allowed beyond the workers before overload rejection (0 = 16)")
	maxTimeout := flag.Duration("max-timeout", 0, "ceiling on any request's wall-clock deadline (0 = 1m)")
	quantum := flag.Int("quantum", 0, "preemption slice in evaluations (0 = no preemption)")
	perClient := flag.Int("per-client", 0, "in-flight requests allowed per connection (0 = 4)")
	metricsAddr := flag.String("metrics", "", "serve counters on http://ADDR/metrics (empty = off)")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eqsolved:", err)
		os.Exit(1)
	}
	srv := serve.New(serve.Options{
		Workers:    *workers,
		Queue:      *queue,
		MaxTimeout: *maxTimeout,
		Quantum:    *quantum,
		PerClient:  *perClient,
		LogWriter:  os.Stderr,
	})

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eqsolved:", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.Metrics())
		msrv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go msrv.Serve(mln)
		defer msrv.Close()
		fmt.Printf("metrics http://%s/metrics\n", mln.Addr())
	}

	// The actual address on stdout is the contract test harnesses (and
	// humans using -listen :0) key on.
	fmt.Printf("listening %s\n", ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-sigs:
		srv.Close()
		<-done
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "eqsolved:", err)
			os.Exit(1)
		}
	}
	fmt.Println("shutdown clean")
}
