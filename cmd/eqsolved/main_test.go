package main

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"warrow/internal/chaos"
	"warrow/internal/eqgen"
	"warrow/internal/serve"
	"warrow/internal/serve/proto"
)

// The smoke test builds both binaries once and drives a real daemon process
// over the wire: complete, abort, checkpoint/resume through `eqsolve
// -connect`, the metrics endpoint, and a clean SIGTERM shutdown.
var (
	eqsolvedBin string
	eqsolveBin  string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "eqsolved-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	eqsolvedBin = filepath.Join(dir, "eqsolved")
	eqsolveBin = filepath.Join(dir, "eqsolve")
	for bin, pkg := range map[string]string{eqsolvedBin: ".", eqsolveBin: "../eqsolve"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n%s", pkg, err, out)
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// daemon starts the built binary and returns the addresses it printed.
type daemon struct {
	cmd     *exec.Cmd
	addr    string
	metrics string
}

func startDaemon(t *testing.T, extraFlags ...string) *daemon {
	t.Helper()
	args := append([]string{"-listen", "127.0.0.1:0", "-metrics", "127.0.0.1:0"}, extraFlags...)
	cmd := exec.Command(eqsolvedBin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	sc := bufio.NewScanner(stdout)
	deadline := time.After(10 * time.Second)
	lines := make(chan string, 4)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for d.addr == "" || d.metrics == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("daemon exited before printing its addresses")
			}
			if rest, found := strings.CutPrefix(line, "listening "); found {
				d.addr = rest
			}
			if rest, found := strings.CutPrefix(line, "metrics http://"); found {
				d.metrics = strings.TrimSuffix(rest, "/metrics")
			}
		case <-deadline:
			cmd.Process.Kill()
			t.Fatal("daemon did not print its addresses in time")
		}
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return d
}

func TestDaemonSmoke(t *testing.T) {
	d := startDaemon(t, "-workers", "2", "-quantum", "16", "-max-timeout", "30s")
	ckpt := filepath.Join(t.TempDir(), "cp")
	loop := "../../examples/systems/loop.eq"

	// Complete + certify over the wire.
	out, err := exec.Command(eqsolveBin, "-connect", d.addr, "-solver", "sw", "-certify", loop).CombinedOutput()
	if err != nil {
		t.Fatalf("connect solve: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "solved in") || !strings.Contains(string(out), "post-solution verified") {
		t.Errorf("connect solve output:\n%s", out)
	}

	// Budget abort returns a resumable handle, which the client writes out.
	out, err = exec.Command(eqsolveBin, "-connect", d.addr, "-solver", "sw", "-max-evals", "5", "-checkpoint", ckpt, loop).CombinedOutput()
	if err == nil || !strings.Contains(string(out), "aborted (budget)") {
		t.Fatalf("budget abort over the wire: err=%v\n%s", err, out)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint handle not written: %v", err)
	}

	// Resume the served solve from the handle and finish it.
	out, err = exec.Command(eqsolveBin, "-connect", d.addr, "-solver", "sw", "-resume", ckpt, "-certify", loop).CombinedOutput()
	if err != nil {
		t.Fatalf("resume over the wire: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "resuming from") || !strings.Contains(string(out), "post-solution verified") {
		t.Errorf("resume output:\n%s", out)
	}

	// The metrics endpoint accounts for everything the daemon just did.
	resp, err := http.Get("http://" + d.metrics + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		body.WriteString(sc.Text() + "\n")
	}
	resp.Body.Close()
	for _, want := range []string{"eqsolved_accepted_total 3", "eqsolved_completed_total 2", "eqsolved_aborted_total{reason=budget} 1", "eqsolved_resumes_total 1"} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, body.String())
		}
	}

	// SIGTERM shuts the daemon down cleanly.
	d.cmd.Process.Signal(syscall.SIGTERM)
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
}

func TestDaemonConnectRejectsLocalOnlyFlags(t *testing.T) {
	out, err := exec.Command(eqsolveBin, "-connect", "127.0.0.1:1", "-op", "join", "../../examples/systems/loop.eq").CombinedOutput()
	if err == nil || !strings.Contains(string(out), "usage") {
		t.Errorf("-connect with -op join: err=%v\n%s", err, out)
	}
}

// TestDaemonInProcessShutdownUnderLoad closes an in-process server while
// solves are in flight; Close must drain them (no lost requests) and the
// metrics must balance.
func TestDaemonInProcessShutdownUnderLoad(t *testing.T) {
	srv := serve.New(serve.Options{Workers: 2, Quantum: 8, MaxTimeout: 10 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	c, err := serve.Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	results := make(chan *proto.Response, 4)
	for i := 0; i < 4; i++ {
		go func() {
			resp, _ := c.Do(&proto.Request{Solver: "sw", Source: proto.SourceGen,
				Gen:   &eqgen.Config{Seed: 7, N: 48},
				Chaos: &chaos.Config{Latency: 1, Delay: 2 * time.Millisecond}})
			results <- resp
		}()
	}
	time.Sleep(20 * time.Millisecond)
	srv.Close()
	snap := srv.Metrics().Snapshot()
	finished := snap["eqsolved_completed_total"]
	for name, n := range snap {
		if strings.HasPrefix(name, "eqsolved_aborted_total{") {
			finished += n
		}
	}
	if got := snap["eqsolved_accepted_total"]; got != finished {
		t.Errorf("accepted %d != terminal outcomes %d after Close", got, finished)
	}
	if snap["eqsolved_queue_depth"] != 0 {
		t.Errorf("queue depth %d after Close, want 0", snap["eqsolved_queue_depth"])
	}
}
