module warrow

go 1.22
